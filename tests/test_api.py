"""The unified repro.api facade: Database / PreparedQuery / ExecOptions.

Covers the five execution modes behind one handle (static value,
batched evaluation, bound point queries, maintained updates,
enumeration) plus serve(), the routed update context (maintenance,
invalidation, epoch/cache coherence, out-of-band detection), the
consolidated option validation, and the shared worker pool / cache
lifecycles.
"""

from __future__ import annotations

import random
import threading
import warnings

import pytest

from repro.api import Database, ExecOptions
from repro.logic import Atom, Bracket, Sum, Weight
from repro.semirings import BOOLEAN, MIN_PLUS, NATURAL
from repro.structures import Structure

from tests.util import semiring_params, weighted_graph_structure
from repro.graphs import triangulated_grid

E = lambda x, y: Atom("E", (x, y))
w = lambda x, y: Weight("w", (x, y))

#: Closed: total edge weight.
EDGE_SUM = Sum(("x", "y"), Bracket(E("x", "y")) * w("x", "y"))
#: One parameter: weighted out-degree.
DEGREE = Sum("y", Bracket(E("x", "y")) * w("x", "y"))


def build(side=3, seed=2):
    return weighted_graph_structure(triangulated_grid(side, side), seed=seed)


def reference_degree(structure, vertex, conv=lambda v: v, zero=0):
    total = zero
    for (a, b), value in structure.weights["w"].items():
        if a == vertex:
            total = total + value
    return total


class TestExecOptions:
    def test_backend_validated_eagerly_with_shared_message(self):
        with pytest.raises(ValueError, match="unknown backend 'cuda'"):
            ExecOptions(backend="cuda")

    def test_all_knob_bounds(self):
        for bad in (dict(workers=0), dict(pool_size=0),
                    dict(max_batch_size=0), dict(max_batch_delay=-1.0),
                    dict(plan_cache_size=0), dict(result_cache_size=-1)):
            with pytest.raises(ValueError):
                ExecOptions(**bad)

    def test_merged_revalidates_and_rejects_unknown(self):
        options = ExecOptions()
        assert options.merged() is options
        assert options.merged(workers=4).workers == 4
        with pytest.raises(ValueError):
            options.merged(backend="gpu")
        with pytest.raises(TypeError, match="unknown execution option"):
            options.merged(batch_size=3)

    def test_database_and_call_level_overrides(self):
        db = Database(build(), workers=2, result_cache_size=0)
        assert db.options.workers == 2
        assert db.result_cache is None
        prepared = db.prepare(EDGE_SUM, backend="python")
        assert prepared.options.backend == "python"
        assert prepared.options.workers == 2  # inherited
        db.close()

    def test_invalid_backend_rejected_at_every_seam(self, small_grid_structure):
        with Database(small_grid_structure) as db:
            with pytest.raises(ValueError, match="unknown backend"):
                db.prepare(EDGE_SUM, backend="fpga")
            prepared = db.prepare(DEGREE)
            with pytest.raises(ValueError, match="unknown backend"):
                prepared.batch([(small_grid_structure.domain[0],)], NATURAL,
                               backend="fpga")
            with pytest.raises(ValueError, match="unknown backend"):
                db.serve(DEGREE, NATURAL, backend="fpga")


class TestExecutionModes:
    @semiring_params()
    def test_value_matches_direct_evaluation(self, sr, conv):
        structure = weighted_graph_structure(triangulated_grid(3, 3),
                                             seed=3, conv=conv)
        with Database(structure) as db:
            total = db.prepare(EDGE_SUM).value(sr)
        expected = sr.zero
        for edge, value in structure.weights["w"].items():
            expected = sr.add(expected, value)
        assert sr.eq(total, expected)

    def test_value_requires_closed_query(self):
        with Database(build()) as db:
            prepared = db.prepare(DEGREE)
            with pytest.raises(ValueError, match="parameters"):
                prepared.value(NATURAL)

    def test_batch_closed_valuations(self):
        structure = build()
        edges = sorted(structure.relations["E"])[:3]
        with Database(structure) as db:
            prepared = db.prepare(EDGE_SUM)
            base = prepared.value(NATURAL)
            values = prepared.batch(
                [{}] + [{("w", "w", edge): 0} for edge in edges], NATURAL)
            assert values[0] == base
            for edge, dropped in zip(edges, values[1:]):
                assert dropped == base - structure.weights["w"][edge]

    def test_batch_parameterized_argument_tuples(self):
        structure = build()
        probes = structure.domain[:5]
        with Database(structure) as db:
            prepared = db.prepare(DEGREE)
            values = prepared.batch([(v,) for v in probes], NATURAL)
        assert values == [reference_degree(structure, v) for v in probes]

    def test_batch_workers_use_shared_pool(self):
        structure = build()
        with Database(structure) as db:
            prepared = db.prepare(EDGE_SUM)
            serial = prepared.batch([{}] * 8, NATURAL)
            sharded = prepared.batch([{}] * 8, NATURAL, workers=4)
            assert sharded == serial
            assert db.stats()["pool_started"]
            # The pool survives across calls (no per-call construction).
            pool = db.executor()
            assert db.executor() is pool

    def test_bind_positional_and_keyword(self):
        structure = build()
        vertex = structure.domain[4]
        with Database(structure) as db:
            prepared = db.prepare(DEGREE)
            expected = reference_degree(structure, vertex)
            assert prepared.bind(vertex).value(NATURAL) == expected
            assert prepared.bind(x=vertex).value(NATURAL) == expected
            with pytest.raises(ValueError, match="expected 1 arguments"):
                prepared.bind(vertex, vertex)
            with pytest.raises(ValueError, match="do not match params"):
                prepared.bind(y=vertex)
            with pytest.raises(TypeError):
                prepared.bind(vertex, x=vertex)

    def test_bind_results_cached_until_effective_update(self):
        structure = build()
        vertex = structure.domain[0]
        edge = next(e for e in sorted(structure.relations["E"])
                    if e[0] == vertex)
        with Database(structure) as db:
            prepared = db.prepare(DEGREE)
            before = prepared.bind(vertex).value(NATURAL)
            prepared.bind(vertex).value(NATURAL)
            assert db.result_cache.stats()["hits"] == 1
            # A no-op write keeps the cache warm.
            with db.update() as tx:
                assert tx.set_weight("w", edge,
                                     structure.weights["w"][edge]) == 0
            prepared.bind(vertex).value(NATURAL)
            assert db.result_cache.stats()["hits"] == 2
            # An effective write advances the epoch and invalidates.
            original = structure.weights["w"][edge]
            with db.update() as tx:
                assert tx.set_weight("w", edge, 0) > 0
            assert prepared.bind(vertex).value(NATURAL) == before - original
            assert db.epoch == 1

    def test_maintain_tracks_routed_updates(self):
        structure = build()
        edge = sorted(structure.relations["E"])[0]
        original = structure.weights["w"][edge]
        with Database(structure) as db:
            prepared = db.prepare(EDGE_SUM)
            maintained = db.prepare(EDGE_SUM).maintain(NATURAL)
            base = maintained.value()
            assert base == prepared.value(NATURAL)
            touched = maintained.update_weight("w", edge, original + 5)
            assert touched > 0
            assert maintained.value() == base + 5
            # The same routed update reached the *other* prepared handle.
            assert prepared.value(NATURAL) == base + 5
            # maintain() is cached per semiring.
            again = db.prepare(EDGE_SUM)
            assert again.maintain(NATURAL) is again.maintain(NATURAL)

    def test_maintain_rejects_parameterized(self):
        with Database(build()) as db:
            with pytest.raises(ValueError, match="closed query"):
                db.prepare(DEGREE).maintain(NATURAL)

    def test_enumerate_answers_of_formula(self):
        structure = build()
        formula = E("x", "y")
        with Database(structure) as db:
            prepared = db.prepare(formula, params=("x", "y"))
            answers = set(prepared.enumerate())
            assert answers == set(structure.relations["E"])
            # The same prepared handle also evaluates: existence + count.
            assert prepared.bind(*sorted(answers)[0]).value(BOOLEAN)

    def test_enumerate_provenance_monomials(self):
        structure = Structure(["a", "b", "c"])
        for pair in [("a", "b"), ("b", "c")]:
            structure.add_tuple("E", pair)
            structure.set_weight("w", pair, f"e{pair[0]}{pair[1]}")
        expr = Sum(("x", "y"), w("x", "y"))
        with Database(structure) as db:
            monomials = sorted(db.prepare(expr).enumerate().monomials())
        assert monomials == [("eab",), ("ebc",)]

    def test_enumerate_rejects_open_weighted_expr(self):
        with Database(build()) as db:
            with pytest.raises(ValueError, match="enumerate"):
                db.prepare(DEGREE).enumerate()

    def test_explain_and_stats(self):
        with Database(build()) as db:
            prepared = db.prepare(EDGE_SUM)
            stats = prepared.stats()
            assert stats["gates"] > 0 and stats["kind"] == "weighted"
            text = prepared.explain()
            assert "circuit:" in text and "options:" in text
            lazy = db.prepare(DEGREE)
            assert lazy.stats().get("compiled") is False
            assert "not compiled" in lazy.explain()


class TestServe:
    def test_serve_prewired_to_shared_caches(self):
        structure = build(4)
        probe = structure.domain[7]
        with Database(structure) as db:
            with db.serve(DEGREE, NATURAL) as service:
                assert service.plan_cache is db.plan_cache
                expected = reference_degree(structure, probe)
                assert service.query(probe) == expected
                assert service.query(probe) == expected
                stats = service.stats()
                assert stats["result_cache"]["hits"] >= 1
                assert stats["result_cache"].get("shared") is True
            # A second service over equal content reuses the compilation.
            with db.serve(DEGREE, NATURAL) as service:
                service.query(probe)
            assert db.plan_cache.stats()["hits"] >= 1

    def test_serve_accepts_formulas_like_prepare(self):
        structure = build(3)
        edge = sorted(structure.relations["E"])[0]
        with Database(structure) as db:
            with db.serve(Atom("E", ("x", "y")), NATURAL,
                          params=("x", "y")) as service:
                assert service.query(*edge) == 1
                assert service.query(edge[0], edge[0]) == 0

    def test_scoped_result_caches_do_not_collide(self):
        structure = build(3)
        probe = structure.domain[0]
        drop = Sum("y", Bracket(E("x", "y")))  # unweighted out-degree
        weighted_ref = reference_degree(structure, probe)
        count_ref = sum(1 for (a, _) in structure.relations["E"]
                        if a == probe)
        with Database(structure) as db:
            with db.serve(DEGREE, NATURAL) as weighted:
                with db.serve(drop, NATURAL) as unweighted:
                    assert weighted.query(probe) == weighted_ref
                    assert unweighted.query(probe) == count_ref
                    # Same key (the probe), different scopes: each service
                    # re-hits its *own* cached value, never the other's.
                    assert weighted.query(probe) == weighted_ref
                    assert unweighted.query(probe) == count_ref

    def test_routed_updates_reach_services(self):
        structure = build(3)
        vertex = structure.domain[0]
        edge = next(e for e in sorted(structure.relations["E"])
                    if e[0] == vertex)
        original = structure.weights["w"][edge]
        with Database(structure) as db:
            with db.serve(DEGREE, NATURAL) as service:
                before = service.query(vertex)
                with db.update() as tx:
                    touched = tx.set_weight("w", edge, 0)
                assert touched > 0
                assert service.query(vertex) == before - original

    def test_update_refused_when_service_cannot_absorb(self):
        structure = build(3)
        extra = structure.domain[0]
        with Database(structure) as db:
            with db.serve(DEGREE, NATURAL):
                with db.update() as tx:
                    # "w" and "E" are read by DEGREE: a write the live
                    # service cannot maintain in place is refused up
                    # front, before anything mutates.
                    with pytest.raises(KeyError, match="live service"):
                        tx.set_weight("w", (extra, extra), 7)
                    with pytest.raises(ValueError, match="live service"):
                        tx.set_relation("E", (extra, extra), False)

    def test_irrelevant_updates_skip_live_services(self):
        """A write the service's query provably never reads is routed
        past it instead of being refused database-wide."""
        structure = build(3)
        vertex = structure.domain[0]
        structure.relations.setdefault("S", set())
        structure._arity.setdefault("S", 1)
        count_s = Sum("x", Bracket(Atom("S", ("x",))))
        with Database(structure) as db:
            with db.serve(DEGREE, NATURAL) as service:  # reads E, w only
                before = service.query(vertex)
                counter = db.prepare(count_s, dynamic=("S",))
                with db.update() as tx:
                    tx.set_weight("aux", (vertex,), 9)   # new weight name
                    tx.set_relation("S", (vertex,), True)  # undeclared rel
                assert counter.value(NATURAL) == 1
                assert service.query(vertex) == before  # untouched


class TestUpdateRouting:
    def test_new_weight_tuple_invalidates_and_recompiles(self):
        structure = build(3)
        vertex, other = structure.domain[0], structure.domain[1]
        structure.set_weight("u", (other,), 0)  # declared for one element
        with Database(structure) as db:
            prepared = db.prepare(
                Sum(("x", "y"), Bracket(E("x", "y")) * w("x", "y"))
                + Sum("x", Weight("u", ("x",))))
            base = prepared.value(NATURAL)
            assert base == sum(structure.weights["w"].values())
            with db.update() as tx:
                # (vertex,) was *not* declared at compile time: outside
                # the maintenance model -> invalidate + lazy recompile.
                tx.set_weight("u", (vertex,), 5)
            assert prepared.value(NATURAL) == base + 5

    def test_dynamic_relation_maintained_incrementally(self):
        # Count S-marked vertices; S is declared dynamic.
        structure = build(3)
        structure.relations.setdefault("S", set())
        structure._arity.setdefault("S", 1)
        count_s = Sum("x", Bracket(Atom("S", ("x",))))
        vertex = structure.domain[0]
        with Database(structure) as db:
            maintained = db.prepare(count_s, dynamic=("S",)).maintain(NATURAL)
            assert maintained.value() == 0
            touched = maintained.set_relation("S", (vertex,), True)
            assert touched > 0
            assert maintained.value() == 1
            maintained.set_relation("S", (vertex,), False)
            assert maintained.value() == 0

    def test_undeclared_relation_toggle_invalidates(self):
        structure = build(3)
        structure.relations.setdefault("S", set())
        structure._arity.setdefault("S", 1)
        count_s = Sum("x", Bracket(Atom("S", ("x",))))
        vertex = structure.domain[0]
        with Database(structure) as db:
            prepared = db.prepare(count_s)  # S *not* declared dynamic
            assert prepared.value(NATURAL) == 0
            with db.update() as tx:
                tx.set_relation("S", (vertex,), True)
            # The stale plan was dropped and recompiled, not served.
            assert prepared.value(NATURAL) == 1

    def test_invalidation_only_weight_update_kills_cached_points(self):
        """Regression: an update absorbed by *no* consumer (a brand-new
        weight tuple -> invalidate + lazy recompile) must still advance
        the epoch, or cached bound results survive the change."""
        structure = build(3)
        vertex, other = structure.domain[0], structure.domain[1]
        structure.set_weight("u", (other,), 1)
        with Database(structure) as db:
            g = db.prepare(Weight("u", ("x",)), params=("x",))
            assert g.bind(vertex).value(NATURAL) == 0  # cached at epoch 0
            with db.update() as tx:
                tx.set_weight("u", (vertex,), 100)  # new tuple: touched 0
            assert g.bind(vertex).value(NATURAL) == 100

    def test_absorbed_toggle_invalidates_other_consumers_caches(self):
        """Regression: a toggle absorbed by one consumer (touched 0, no
        maintained handle) while invalidating another must advance the
        epoch for the invalidated one's cached bound results."""
        structure = build(3)
        structure.relations.setdefault("S", set())
        structure._arity.setdefault("S", 1)
        vertex = structure.domain[0]
        count_s = Sum("x", Bracket(Atom("S", ("x",))))
        with Database(structure) as db:
            absorber = db.prepare(count_s, dynamic=("S",))
            absorber.value(NATURAL)  # compile the absorbing plan
            holder = db.prepare(Bracket(Atom("S", ("x",))), params=("x",))
            assert holder.bind(vertex).value(NATURAL) == 0  # cached
            with db.update() as tx:
                tx.set_relation("S", (vertex,), True)
            assert holder.bind(vertex).value(NATURAL) == 1
            assert absorber.value(NATURAL) == 1

    def test_out_of_band_mutation_detected_and_invalidated(self):
        structure = build(3)
        edge = sorted(structure.relations["E"])[0]
        vertex = structure.domain[0]
        with Database(structure) as db:
            prepared = db.prepare(EDGE_SUM)
            degree = db.prepare(DEGREE)
            base = prepared.value(NATURAL)
            point = degree.bind(vertex).value(NATURAL)
            epoch = db.epoch
            # Bypass the facade entirely: a raw structure write.
            structure.set_weight("w", edge, structure.weights["w"][edge] + 9)
            assert prepared.value(NATURAL) == base + 9
            assert db.epoch > epoch  # caches invalidated
            expected = point + (9 if edge[0] == vertex else 0)
            assert degree.bind(vertex).value(NATURAL) == expected

    def test_read_inside_transaction_keeps_maintenance(self):
        """Regression: a facade read *inside* db.update() must not
        mistake the transaction's own writes for out-of-band mutations
        and flush every compiled artifact."""
        structure = build(3)
        edge = sorted(structure.relations["E"])[0]
        original = structure.weights["w"][edge]
        with Database(structure) as db:
            prepared = db.prepare(EDGE_SUM)
            maintained = prepared.maintain(NATURAL)
            base = maintained.value()
            evaluator = maintained._dq
            plan = prepared._plan
            with db.update() as tx:
                tx.set_weight("w", edge, 0)
                # The mid-transaction read sees the new value...
                assert prepared.value(NATURAL) == base - original
            # ...without the incremental machinery being torn down.
            assert maintained._dq is evaluator
            assert prepared._plan is plan
            assert maintained.value() == base - original

    def test_unreferenced_weight_update_keeps_everything_warm(self):
        """A weight name the expression never reads cannot change its
        value: no invalidation, no epoch bump, caches stay warm."""
        structure = build(3)
        vertex = structure.domain[0]
        with Database(structure) as db:
            prepared = db.prepare(DEGREE)
            expected = prepared.bind(vertex).value(NATURAL)
            engine = prepared._engines[NATURAL.name]
            with db.update() as tx:
                tx.set_weight("aux", (vertex,), 123)  # not read by DEGREE
            assert prepared.bind(vertex).value(NATURAL) == expected
            assert db.result_cache.stats()["hits"] == 1  # served warm
            assert prepared._engines[NATURAL.name] is engine

    def test_unreferenced_relation_toggle_keeps_caches_warm(self):
        """Symmetric to the weight case: a toggle of a relation no
        consumer reads must not advance the epoch."""
        structure = build(3)
        structure.relations.setdefault("S", set())
        structure._arity.setdefault("S", 1)
        vertex = structure.domain[0]
        with Database(structure) as db:
            prepared = db.prepare(DEGREE)  # reads E and w only
            expected = prepared.bind(vertex).value(NATURAL)
            epoch = db.epoch
            with db.update() as tx:
                tx.set_relation("S", (vertex,), True)
            assert db.epoch == epoch
            assert prepared.bind(vertex).value(NATURAL) == expected
            assert db.result_cache.stats()["hits"] == 1  # served warm

    def test_shared_result_cache_across_databases_never_collides(self):
        """Two Databases may share one ResultCache (one memory budget);
        their scope namespaces must still be disjoint."""
        from repro.serve import ResultCache
        shared = ResultCache(256)
        s1 = build(3, seed=2)
        s2 = build(3, seed=9)  # same shape, different weights
        vertex = s1.domain[0]
        with Database(s1, result_cache=shared) as db1:
            with Database(s2, result_cache=shared) as db2:
                q1 = db1.prepare(DEGREE)
                q2 = db2.prepare(DEGREE)
                assert q1.bind(vertex).value(NATURAL) == \
                    reference_degree(s1, vertex)
                assert q2.bind(vertex).value(NATURAL) == \
                    reference_degree(s2, vertex)

    def test_closed_consumers_release_their_cached_results(self):
        structure = build(3)
        vertex = structure.domain[0]
        with Database(structure) as db:
            prepared = db.prepare(DEGREE)
            prepared.bind(vertex).value(NATURAL)
            with db.serve(DEGREE, NATURAL) as service:
                service.query(vertex)
                assert len(db.result_cache) == 2
            # service closed: its scoped entries are purged.
            assert len(db.result_cache) == 1
            prepared.close()
            assert len(db.result_cache) == 0

    def test_concurrent_binds_are_consistent(self):
        """The shared engine's selector protocol is a critical section:
        concurrent binds must never observe each other's selectors."""
        structure = build(4)
        expected = {v: reference_degree(structure, v)
                    for v in structure.domain}
        with Database(structure, result_cache_size=0) as db:
            prepared = db.prepare(DEGREE)
            errors = []

            def worker(seed):
                rng = random.Random(seed)
                try:
                    for _ in range(25):
                        v = rng.choice(structure.domain)
                        got = prepared.bind(v).value(NATURAL)
                        if got != expected[v]:
                            errors.append((v, got, expected[v]))
                except BaseException as error:  # noqa: BLE001
                    errors.append(error)

            threads = [threading.Thread(target=worker, args=(seed,))
                       for seed in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors

    def test_concurrent_binds_under_routed_updates_no_stale_no_leaks(self):
        """Hammer one Database handle from many reader threads while a
        writer routes ``db.update()`` weight writes through the facade
        hot path — with the shared result cache *enabled*, so the
        epoch-tagging is what stands between a racing bind and a stale
        cached point.  Afterwards every bind must reflect the final
        routed state (no stale cached points) and the host structure
        must carry no selector weights (no leaks), alive or closed."""
        structure = build(4)
        edges = sorted(structure.relations["E"])
        with Database(structure) as db:
            prepared = db.prepare(DEGREE)
            errors = []
            stop = threading.Event()

            def reader(seed):
                rng = random.Random(seed)
                try:
                    while not stop.is_set():
                        v = rng.choice(structure.domain)
                        value = prepared.bind(v).value(NATURAL)
                        if not isinstance(value, int) or value < 0:
                            errors.append(("reader", v, value))
                except BaseException as error:  # noqa: BLE001
                    errors.append(error)

            def writer(seed):
                rng = random.Random(1000 + seed)
                try:
                    for _round in range(20):
                        with db.update() as tx:
                            for edge in rng.sample(edges, 3):
                                tx.set_weight("w", edge, rng.randint(1, 9))
                except BaseException as error:  # noqa: BLE001
                    errors.append(error)

            readers = [threading.Thread(target=reader, args=(seed,))
                       for seed in range(6)]
            writers = [threading.Thread(target=writer, args=(seed,))
                       for seed in range(2)]
            for thread in readers + writers:
                thread.start()
            for thread in writers:
                thread.join()
            stop.set()
            for thread in readers:
                thread.join()
            assert not errors
            # No stale cached points: every post-quiescence bind agrees
            # with a from-scratch reference over the final weights.
            for v in structure.domain:
                assert prepared.bind(v).value(NATURAL) \
                    == reference_degree(structure, v)
            # No selector leaks on the facade's host structure — the
            # engines live on snapshots, never on the caller's structure.
            assert not any(name.startswith("_sel")
                           for name in structure.weights)
        assert not any(name.startswith("_sel") for name in structure.weights)

    def test_update_context_reports_touched(self):
        structure = build(3)
        edges = sorted(structure.relations["E"])[:2]
        with Database(structure) as db:
            maintained = db.prepare(EDGE_SUM).maintain(NATURAL)
            maintained.value()  # materialize the dynamic evaluator
            with db.update() as tx:
                tx.set_weight("w", edges[0], 0)
                tx.set_weight("w", edges[1], 0)
                assert tx.touched > 0


class TestLifecycle:
    def test_close_strips_selectors_and_rejects_use(self):
        structure = build(3)
        db = Database(structure)
        prepared = db.prepare(DEGREE)
        prepared.bind(structure.domain[0]).value(NATURAL)
        # Engines run on snapshots: the caller's structure never grows
        # selector weight functions.
        assert not any(name.startswith("_sel") for name in structure.weights)
        db.close()
        with pytest.raises(RuntimeError, match="closed"):
            prepared.bind(structure.domain[0]).value(NATURAL)
        with pytest.raises(RuntimeError, match="closed"):
            db.prepare(EDGE_SUM)
        db.close()  # idempotent

    def test_out_of_band_mutation_closes_services(self):
        """A live service pool cannot be rebuilt in place: when a write
        bypasses the facade, the service is closed rather than left
        serving the pre-mutation snapshot."""
        structure = build(3)
        vertex = structure.domain[0]
        edge = sorted(structure.relations["E"])[0]
        with Database(structure) as db:
            service = db.serve(DEGREE, NATURAL)
            service.query(vertex)
            structure.set_weight("w", edge, 999)  # bypasses db.update()
            db.prepare(EDGE_SUM)  # any facade call runs the freshness check
            assert service.closed
            with pytest.raises(RuntimeError, match="closed"):
                service.query(vertex)

    def test_closed_handles_are_deregistered(self):
        structure = build(3)
        with Database(structure) as db:
            for _ in range(5):
                prepared = db.prepare(EDGE_SUM)
                prepared.value(NATURAL)
                prepared.close()
            assert db.stats()["prepared"] == 0  # close() deregisters
            with db.serve(DEGREE, NATURAL) as service:
                service.query(structure.domain[0])
            db.prepare(EDGE_SUM)  # registration prunes the closed service
            assert db.stats()["services"] == 0

    def test_facade_paths_emit_no_deprecation_warnings(self):
        structure = build(3)
        vertex = structure.domain[0]
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with Database(structure) as db:
                prepared = db.prepare(EDGE_SUM)
                prepared.value(NATURAL)
                prepared.value(MIN_PLUS)
                prepared.batch([{}], NATURAL)
                prepared.maintain(NATURAL).value()
                degree = db.prepare(DEGREE)
                degree.bind(vertex).value(NATURAL)
                degree.batch([(vertex,)], NATURAL)
                db.prepare(E("x", "y"), params=("x", "y")).enumerate()
                with db.serve(DEGREE, NATURAL) as service:
                    service.query(vertex)
                with db.update() as tx:
                    edge = sorted(structure.relations["E"])[0]
                    tx.set_weight("w", edge, 3)
