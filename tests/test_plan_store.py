"""Serializable compiled plans and the persistent on-disk plan store.

Four families:

* round-trip equivalence — every shipped semiring's compiled plan
  survives ``to_state``/``from_state`` with identical ``evaluate``/
  ``evaluate_batch`` results, and hypothesis-random circuits survive
  the circuit/schedule codecs byte-for-byte;
* the binary container — version stamps invalidate stale entries,
  corruption is detected, the atom codec covers the whole vocabulary
  and rejects what it cannot express;
* :class:`repro.serve.PlanStore` — hits, misses, stale/corrupt entries,
  concurrent writers, LRU capping, unserializable-plan skips;
* the facade seam — ``Database(plan_store_path=...)`` and
  ``REPRO_PLAN_STORE`` make a fresh database serve its first query
  without recompiling.
"""

from __future__ import annotations

import json
import os
import threading
from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.api import Database, ExecOptions
from repro.circuits import (PLAN_FORMAT_VERSION, PlanNotSerializable,
                            PlanStaleError, PlanStateError, StaticEvaluator,
                            build_schedule, circuit_from_state,
                            circuit_to_state, decode_atom, dump_plan_bytes,
                            encode_atom, load_plan_bytes, schedule_from_state,
                            schedule_to_state)
from repro.core import (CompiledQuery, _compile_structure_query,
                        plan_cache_key)
from repro.logic import Atom, Bracket, Sum, Weight
from repro.semirings import (BOOLEAN, INF, INTEGER, MAX_PLUS, MIN_MAX,
                             MIN_PLUS, NATURAL, RATIONAL, BoundedMinMax,
                             FloatField, FreeSemiring, ModularRing,
                             ProductSemiring, SetAlgebra,
                             saturating_counter_semiring)
from repro.serve import PlanStore
from repro.structures import graph_structure
from repro.graphs import triangulated_grid

from tests.test_properties import circuits

E = lambda x, y: Atom("E", (x, y))
w = lambda x, y: Weight("w", (x, y))

TRIANGLE = Sum(("x", "y", "z"),
               Bracket(E("x", "y") & E("y", "z") & E("z", "x"))
               * w("x", "y") * w("y", "z") * w("z", "x"))
EDGE_SUM = Sum(("x", "y"), Bracket(E("x", "y")) * w("x", "y"))

#: Every shipped semiring with a converter from small nonnegative ints
#: to *serializable* carrier values (the FreeSemiring's Poly carrier is
#: deliberately absent — it is the unserializable case, tested below).
SEMIRING_CASES = [
    ("B", BOOLEAN, lambda v: v > 0),
    ("set-algebra", SetAlgebra(frozenset("abc")),
     lambda v: frozenset("abc"[:1 + v % 3])),
    ("N", NATURAL, lambda v: v),
    ("Z", INTEGER, lambda v: v - 2),
    ("Q", RATIONAL, lambda v: Fraction(v, 3)),
    ("float", FloatField(), float),
    ("min-plus", MIN_PLUS, lambda v: float(v) if v else INF),
    ("max-plus", MAX_PLUS, lambda v: float(v) if v else -INF),
    ("min-max", MIN_MAX, lambda v: v if v else INF),
    ("min-max-3", BoundedMinMax(3), lambda v: min(v, 3)),
    ("Z_7", ModularRing(7), lambda v: v % 7),
    ("sat-4", saturating_counter_semiring(4), lambda v: min(v, 4)),
    ("N x B", ProductSemiring(NATURAL, BOOLEAN), lambda v: (v, v > 0)),
]


def weighted_structure(conv=lambda v: v, side: int = 3):
    structure = graph_structure(triangulated_grid(side, side))
    for index, edge in enumerate(sorted(structure.relations["E"])):
        structure.set_weight("w", edge, conv(index % 5))
    return structure


def roundtrip(compiled, structure, expr):
    """to_state -> container bytes -> from_state, over ``structure``."""
    blob = dump_plan_bytes(compiled.to_state())
    return CompiledQuery.from_state(load_plan_bytes(blob), structure, expr)


# -- round-trip equivalence ------------------------------------------------------


@pytest.mark.parametrize("sr,conv",
                         [(sr, conv) for _, sr, conv in SEMIRING_CASES],
                         ids=[name for name, _, _ in SEMIRING_CASES])
@pytest.mark.parametrize("expr", [TRIANGLE, EDGE_SUM],
                         ids=["triangle", "edge-sum"])
def test_roundtrip_preserves_results_per_semiring(sr, conv, expr):
    structure = weighted_structure(conv)
    compiled = _compile_structure_query(structure, expr)
    loaded = roundtrip(compiled, weighted_structure(conv), expr)
    assert sr.eq(loaded.evaluate(sr), compiled.evaluate(sr))
    # Batched evaluation: base valuation plus an override batch.
    edges = sorted(structure.relations["E"])[:2]
    valuations = [{}, {("w", "w", edges[0]): conv(3)},
                  {("w", "w", edge): sr.one for edge in edges}]
    assert all(sr.eq(a, b) for a, b in
               zip(loaded.evaluate_batch(sr, valuations, backend="python"),
                   compiled.evaluate_batch(sr, valuations,
                                           backend="python")))


def test_roundtrip_preserves_dynamic_updates():
    structure = weighted_structure()
    compiled = _compile_structure_query(structure, TRIANGLE)
    loaded = roundtrip(compiled, weighted_structure(), TRIANGLE)
    edge = sorted(structure.relations["E"])[0]
    for plan in (compiled, loaded):
        handle = plan._dynamic(NATURAL)
        handle.update_weight("w", edge, 7)
    assert (loaded._dynamic(NATURAL).value()
            == compiled._dynamic(NATURAL).value())


def test_roundtrip_preserves_enumeration():
    structure = weighted_structure(side=2)
    free = FreeSemiring()
    # Provenance enumeration needs Free-carrier weights, which cannot
    # serialize — enumerate through the *facade* instead, whose
    # enumerators compile from the (serializable) formula plan side.
    from repro.logic.fo import Atom as FoAtom
    formula = FoAtom("E", ("x", "y"))  # quantifier-free (Theorem 24)
    with Database(structure.copy()) as db:
        plain = sorted(db.prepare(formula, params=("x", "y")).enumerate())
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        with Database(structure.copy(), plan_store_path=tmp) as db:
            stored = sorted(db.prepare(formula,
                                       params=("x", "y")).enumerate())
    assert plain == stored
    del free


@given(data=st.data())
def test_random_circuits_roundtrip_byte_identically(data):
    circuit, keys = data.draw(circuits())
    state = circuit_to_state(circuit)
    # Through the container (JSON + zlib), not just the dict.
    rebuilt = circuit_from_state(load_plan_bytes(dump_plan_bytes(state)))
    assert rebuilt.gates == circuit.gates
    assert rebuilt.output == circuit.output
    assert rebuilt.inputs == circuit.inputs
    # And the codec is deterministic: same circuit, same bytes.
    assert (json.dumps(circuit_to_state(rebuilt), sort_keys=True)
            == json.dumps(state, sort_keys=True))
    values = {key: data.draw(st.integers(0, 6)) for key in keys}
    assert (StaticEvaluator(rebuilt, NATURAL, values.get).value()
            == StaticEvaluator(circuit, NATURAL, values.get).value())


@given(data=st.data())
def test_random_schedules_roundtrip(data):
    circuit, _ = data.draw(circuits())
    schedule = build_schedule(circuit)
    rebuilt = schedule_from_state(circuit, schedule_to_state(schedule))
    assert rebuilt.layer_of == schedule.layer_of
    assert rebuilt.input_gates == schedule.input_gates
    assert rebuilt.const_gates == schedule.const_gates
    assert len(rebuilt.layers) == len(schedule.layers)
    for mine, theirs in zip(rebuilt.layers, schedule.layers):
        assert [(g.kind, g.fan_in, g.gate_ids, g.children)
                for g in mine.groups] \
            == [(g.kind, g.fan_in, g.gate_ids, g.children)
                for g in theirs.groups]


# -- the atom codec and the container --------------------------------------------


@pytest.mark.parametrize("value", [
    None, True, False, 0, -7, 3.5, float("inf"), "x", (1, ("a", 2)),
    frozenset({1, 2}), {"k"}, [1, [2]], Fraction(22, 7), b"\x00\xff",
    (frozenset({("n", 1)}), [Fraction(-1, 3)]),
])
def test_atom_codec_roundtrip(value):
    encoded = encode_atom(value)
    json.dumps(encoded)  # must be JSON-expressible
    assert decode_atom(encoded) == value
    assert type(decode_atom(encoded)) is type(value)


def test_atom_codec_rejects_out_of_vocabulary():
    class Opaque:
        pass
    with pytest.raises(PlanNotSerializable):
        encode_atom(Opaque())
    with pytest.raises(PlanStateError):
        decode_atom(["unknown-tag", 1])


def test_container_rejects_version_skew_and_corruption():
    blob = dump_plan_bytes({"x": 1})
    assert load_plan_bytes(blob) == {"x": 1}
    with pytest.raises(PlanStaleError):
        load_plan_bytes(dump_plan_bytes({"x": 1},
                                        format_version=PLAN_FORMAT_VERSION
                                        + 1))
    with pytest.raises(PlanStaleError):
        load_plan_bytes(dump_plan_bytes({"x": 1}, library_version="0.0.0"))
    with pytest.raises(PlanStateError):
        load_plan_bytes(b"GARBAGE" + blob[7:])  # wrong magic
    with pytest.raises(PlanStateError):
        load_plan_bytes(blob[:-3])  # truncated payload
    flipped = bytearray(blob)
    flipped[-1] ^= 0xFF  # corrupt the compressed payload
    with pytest.raises(PlanStateError):
        load_plan_bytes(bytes(flipped))


def test_from_state_rejects_malformed_plans():
    structure = weighted_structure()
    state = _compile_structure_query(structure, EDGE_SUM).to_state()
    with pytest.raises(PlanStateError):
        CompiledQuery.from_state("not-a-dict", structure)
    stale = dict(state, format=PLAN_FORMAT_VERSION + 1)
    with pytest.raises(PlanStateError):
        CompiledQuery.from_state(stale, structure)
    bad = json.loads(json.dumps(state))
    bad["recorded"][0][1] = "?"  # unknown recorded kind
    with pytest.raises(PlanStateError):
        CompiledQuery.from_state(bad, structure)
    cyclic = json.loads(json.dumps(state))
    cyclic["circuit"]["gates"][-1] = ["+", [10 ** 6, 0]]  # dangling child
    with pytest.raises(PlanStateError):
        CompiledQuery.from_state(cyclic, structure)


# -- PlanStore -------------------------------------------------------------------


def store_key(structure, expr=EDGE_SUM):
    return plan_cache_key(structure, expr, frozenset(), True)


def test_store_miss_save_hit(tmp_path):
    structure = weighted_structure()
    store = PlanStore(tmp_path)
    key = store_key(structure)
    assert store.load(key, structure, EDGE_SUM) is None
    compiled = _compile_structure_query(structure, EDGE_SUM)
    assert store.save(key, compiled)
    fresh = PlanStore(tmp_path)  # cross-process: no in-memory state
    loaded = fresh.load(key, weighted_structure(), EDGE_SUM)
    assert loaded is not None
    assert loaded.evaluate(NATURAL) == compiled.evaluate(NATURAL)
    assert store.stats()["misses"] == 1 and store.stats()["saves"] == 1
    assert fresh.stats()["hits"] == 1
    assert len(fresh) == 1


def test_store_corrupt_entry_recompiles_not_crashes(tmp_path):
    structure = weighted_structure()
    store = PlanStore(tmp_path)
    key = store_key(structure)
    store.save(key, _compile_structure_query(structure, EDGE_SUM))
    (entry,) = list(tmp_path.iterdir())
    entry.write_bytes(b"\x00" * 64)
    assert store.load(key, structure, EDGE_SUM) is None
    assert store.stats()["errors"] == 1
    assert len(store) == 0  # bad entry discarded
    # The compile seam recovers end to end: corrupt entry -> recompile
    # -> the store is healthy again.
    store.save(key, _compile_structure_query(structure, EDGE_SUM))
    entry.write_bytes(entry.read_bytes()[:40])  # truncate
    compiled = _compile_structure_query(structure, EDGE_SUM,
                                        plan_store=store)
    assert compiled.evaluate(NATURAL) is not None
    assert store.stats()["saves"] == 3  # re-saved after the truncation


def test_store_version_skew_counts_stale(tmp_path):
    structure = weighted_structure()
    store = PlanStore(tmp_path)
    key = store_key(structure)
    store.save(key, _compile_structure_query(structure, EDGE_SUM))
    (entry,) = list(tmp_path.iterdir())
    state = load_plan_bytes(entry.read_bytes())
    entry.write_bytes(dump_plan_bytes(state, library_version="0.0.1"))
    assert store.load(key, structure, EDGE_SUM) is None
    assert store.stats()["stale"] == 1
    assert len(store) == 0  # stale entry removed


def test_store_embedded_key_guards_filename_collisions(tmp_path):
    a, b = weighted_structure(), weighted_structure(side=2)
    store = PlanStore(tmp_path)
    store.save(store_key(a), _compile_structure_query(a, EDGE_SUM))
    (entry,) = list(tmp_path.iterdir())
    # Simulate a hash collision: b's key resolves to a's entry file.
    collided = tmp_path / os.path.basename(store._entry_path(store_key(b)))
    collided.write_bytes(entry.read_bytes())
    assert store.load(store_key(b), b, EDGE_SUM) is None
    assert store.stats()["stale"] == 1


def test_store_concurrent_writers_last_wins(tmp_path):
    structure = weighted_structure()
    compiled = _compile_structure_query(structure, EDGE_SUM)
    key = store_key(structure)
    stores = [PlanStore(tmp_path) for _ in range(6)]
    barrier = threading.Barrier(len(stores))

    def writer(store):
        barrier.wait()
        for _ in range(5):
            assert store.save(key, compiled)

    threads = [threading.Thread(target=writer, args=(s,)) for s in stores]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(PlanStore(tmp_path)) == 1  # atomic replace, no torn files
    loaded = PlanStore(tmp_path).load(key, structure, EDGE_SUM)
    assert loaded is not None
    assert loaded.evaluate(NATURAL) == compiled.evaluate(NATURAL)
    assert not list(tmp_path.glob("*.tmp"))


def test_store_lru_prunes_oldest(tmp_path):
    store = PlanStore(tmp_path, max_entries=2)
    structures = [weighted_structure(side=side) for side in (2, 3, 4)]
    for structure in structures:
        store.save(store_key(structure),
                   _compile_structure_query(structure, EDGE_SUM))
        os.utime(store._entry_path(store_key(structure)))
    assert len(store) == 2
    assert store.stats()["evictions"] == 1
    # The first (oldest) entry was evicted; the last two survive.
    assert store.load(store_key(structures[0]), structures[0],
                      EDGE_SUM) is None
    assert store.load(store_key(structures[2]), structures[2],
                      EDGE_SUM) is not None


def test_store_skips_unserializable_plans(tmp_path):
    free = FreeSemiring()
    structure = weighted_structure(
        conv=lambda v: free.scale(v + 1, free.generator(("g", v))))
    store = PlanStore(tmp_path)
    key = store_key(structure)
    compiled = _compile_structure_query(structure, EDGE_SUM,
                                        plan_store=store)
    assert compiled.evaluate(free) is not None  # compile unharmed
    assert store.stats()["skips"] == 1
    assert len(store) == 0
    assert not store.save(key, compiled)


def test_store_stats_shape(tmp_path):
    stats = PlanStore(tmp_path, max_entries=5, max_bytes=1000).stats()
    for field in ("path", "entries", "bytes", "max_entries", "max_bytes",
                  "hits", "misses", "stale", "errors", "skips", "saves",
                  "evictions"):
        assert field in stats
    assert stats["entries"] == 0 and stats["max_entries"] == 5


# -- the facade seam -------------------------------------------------------------


def no_recompile(monkeypatch):
    """Make any fresh Theorem 6 compile explode (load-only mode)."""
    import repro.core.pipeline as pipeline

    def boom(*_args, **_kwargs):
        raise AssertionError("recompiled despite a warm plan store")
    monkeypatch.setattr(pipeline, "low_treedepth_coloring", boom)


def test_fresh_database_serves_without_recompiling(tmp_path, monkeypatch):
    with Database(weighted_structure(), plan_store_path=tmp_path) as db:
        cold = db.prepare(TRIANGLE).value(NATURAL)
        assert db.stats()["plan_store"]["saves"] == 1
    no_recompile(monkeypatch)
    with Database(weighted_structure(), plan_store_path=tmp_path) as db:
        assert db.prepare(TRIANGLE).value(NATURAL) == cold
        stats = db.stats()["plan_store"]
        assert stats["hits"] == 1 and stats["misses"] == 0


def test_environment_variable_attaches_store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_PLAN_STORE", str(tmp_path))
    with Database(weighted_structure()) as db:
        cold = db.prepare(EDGE_SUM).value(NATURAL)
        assert isinstance(db.plan_store, PlanStore)
        assert db.stats()["plan_store"]["saves"] == 1
    no_recompile(monkeypatch)
    with Database(weighted_structure()) as db:
        assert db.prepare(EDGE_SUM).value(NATURAL) == cold


def test_explicit_store_and_path_are_mutually_exclusive(tmp_path):
    with pytest.raises(ValueError):
        Database(weighted_structure(), plan_store=PlanStore(tmp_path),
                 plan_store_path=tmp_path)


def test_exec_options_validate_plan_store(tmp_path):
    ExecOptions(plan_store=PlanStore(tmp_path))  # duck-typed: accepted
    with pytest.raises(ValueError):
        ExecOptions(plan_store="not-a-store")


def test_served_engines_share_the_store(tmp_path, monkeypatch):
    deg = Sum(("y",), Bracket(E("x", "y")) * w("x", "y"))
    with Database(weighted_structure(), plan_store_path=tmp_path) as db:
        element = sorted(db.structure.domain)[0]
        service = db.serve(deg, NATURAL, params=("x",))
        first = service.query(element)
        assert db.stats()["plan_store"]["saves"] >= 1
    no_recompile(monkeypatch)
    with Database(weighted_structure(), plan_store_path=tmp_path) as db:
        service = db.serve(deg, NATURAL, params=("x",))
        assert service.query(element) == first
        assert db.stats()["plan_store"]["hits"] >= 1
