"""The serving layer: micro-batching, plan/result caches, lifecycle.

Covers the QueryService contract (concurrent correctness, coalescing,
epoch-precise result-cache invalidation), the compile-plan cache
(structure fingerprints, rebind isolation, selector-name determinism
with collision fallback), and the engine-pool lifecycle under
concurrency — no selector-weight leaks in the host structure after
close, even with many client threads in flight.
"""

from __future__ import annotations

import random
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import compile_structure_query, plan_cache_key
from repro.engine import SELECTOR_PREFIX, WeightedQueryEngine
from repro.logic import Atom, Bracket, Sum, Weight
from repro.semirings import MIN_PLUS, NATURAL
from repro.serve import MISS, PlanCache, QueryService, ResultCache
from repro.structures import Structure

from tests.util import weighted_graph_structure
from repro.graphs import path_graph, triangulated_grid

E = lambda x, y: Atom("E", (x, y))
w = lambda x, y: Weight("w", (x, y))

#: f(x) = Σ_y [E(x, y)] * w(x, y) — the weighted out-degree point query.
DEGREE = Sum("y", Bracket(E("x", "y")) * w("x", "y"))
#: closed: total edge weight.
EDGE_SUM = Sum(("x", "y"), Bracket(E("x", "y")) * w("x", "y"))


def selector_names(structure):
    return {name for name in structure.weights
            if name.startswith(SELECTOR_PREFIX)}


def reference_values(structure, expr=DEGREE, sr=NATURAL):
    with WeightedQueryEngine(structure.copy(), expr, sr) as engine:
        return {v: engine.query(v) for v in structure.domain}


# -- structure fingerprints ------------------------------------------------------


class TestFingerprint:
    def test_copy_preserves_fingerprint(self):
        structure = weighted_graph_structure(triangulated_grid(3, 3), seed=1)
        assert structure.copy().fingerprint() == structure.fingerprint()

    def test_mutations_change_and_restore_fingerprint(self):
        structure = weighted_graph_structure(path_graph(5), seed=0)
        base = structure.fingerprint()
        edge = sorted(structure.relations["E"])[0]
        old = structure.weights["w"][edge]
        structure.set_weight("w", edge, old + 1)
        assert structure.fingerprint() != base
        structure.set_weight("w", edge, old)
        assert structure.fingerprint() == base  # content-determined

    def test_selector_install_and_strip_roundtrips(self):
        structure = weighted_graph_structure(path_graph(5), seed=0)
        base = structure.fingerprint()
        with WeightedQueryEngine(structure, DEGREE, NATURAL):
            assert structure.fingerprint() != base
        assert structure.fingerprint() == base

    def test_relation_toggle_changes_fingerprint(self):
        structure = Structure("ab", relations={"R": [("a",)]})
        base = structure.fingerprint()
        structure.add_tuple("R", ("b",))
        assert structure.fingerprint() != base
        structure.remove_tuple("R", ("b",))
        assert structure.fingerprint() == base


# -- the compile-plan cache -----------------------------------------------------


class TestPlanCache:
    def test_hit_shares_circuit_and_schedule(self):
        cache = PlanCache()
        structure = weighted_graph_structure(triangulated_grid(3, 3), seed=2)
        first = compile_structure_query(structure, EDGE_SUM,
                                        plan_cache=cache)
        second = compile_structure_query(structure.copy(), EDGE_SUM,
                                         plan_cache=cache)
        assert cache.stats()["hits"] == 1
        assert second.circuit is first.circuit
        assert second.evaluate(NATURAL) == first.evaluate(NATURAL)

    def test_key_distinguishes_content_and_expr(self):
        structure = weighted_graph_structure(path_graph(4), seed=3)
        key = plan_cache_key(structure, EDGE_SUM)
        assert key == plan_cache_key(structure.copy(), EDGE_SUM)
        assert key != plan_cache_key(structure, DEGREE)
        other = weighted_graph_structure(path_graph(4), seed=4)
        assert key != plan_cache_key(other, EDGE_SUM)
        assert key != plan_cache_key(structure, EDGE_SUM, optimize=False)

    def test_rebind_isolates_mutable_state(self):
        # Updates through one consumer's plan must not drift the cached
        # template: a later hit still sees compile-time content.
        cache = PlanCache()
        structure = weighted_graph_structure(path_graph(5), seed=5)
        snapshot = structure.copy()  # pre-update content
        edge = sorted(structure.relations["E"])[0]
        first = compile_structure_query(structure, EDGE_SUM,
                                        plan_cache=cache)
        baseline = first.evaluate(NATURAL)
        dynamic = first.dynamic(NATURAL)
        dynamic.update_weight("w", edge, 50)
        assert dynamic.value() != baseline
        second = compile_structure_query(snapshot, EDGE_SUM,
                                         plan_cache=cache)
        assert cache.stats()["hits"] == 1  # recognized the old content
        assert second.evaluate(NATURAL) == baseline

    def test_dynamic_update_stales_fingerprint_and_plan(self):
        # Regression: DynamicQuery.update_weight used to write the weight
        # dict directly, leaving the cached fingerprint (and hence the
        # plan cache) pointing at pre-update content.
        cache = PlanCache()
        structure = weighted_graph_structure(path_graph(4), seed=16)
        first = compile_structure_query(structure, EDGE_SUM,
                                        plan_cache=cache)
        fingerprint = structure.fingerprint()
        dynamic = first.dynamic(NATURAL)
        edge = sorted(structure.relations["E"])[0]
        dynamic.update_weight("w", edge, 50)
        assert structure.fingerprint() != fingerprint
        second = compile_structure_query(structure, EDGE_SUM,
                                         plan_cache=cache)
        assert second.evaluate(NATURAL) == dynamic.value()

    def test_enumerator_update_invalidates_batched_base(self):
        # Regression: ProvenanceEnumerator.update_weight mutates
        # compiled.recorded; the memoized batched base must go stale too.
        from repro.enumeration import ProvenanceEnumerator
        from repro.semirings import FreeSemiring
        free = FreeSemiring()
        structure = Structure("ab", relations={"E": [("a", "b")]})
        structure.set_weight("w", ("a", "b"), free.generator("e"))
        expr = Sum(("x", "y"), Bracket(Atom("E", ("x", "y")))
                   * Weight("w", ("x", "y")))
        enumerator = ProvenanceEnumerator(structure, expr)
        compiled = enumerator.compiled
        before = compiled.evaluate_batch(free, [{}])[0]  # primes the cache
        assert before == free.generator("e")
        enumerator.update_weight("w", ("a", "b"), free.generator("f"))
        assert compiled.evaluate_batch(free, [{}])[0] == free.generator("f")
        assert compiled.evaluate(free) == free.generator("f")

    def test_lru_eviction_and_clear(self):
        cache = PlanCache(maxsize=2)
        for seed in range(3):
            structure = weighted_graph_structure(path_graph(4), seed=seed)
            compile_structure_query(structure, EDGE_SUM, plan_cache=cache)
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1
        cache.clear()
        assert len(cache) == 0

    def test_engine_reuses_plan_across_equal_structures(self):
        cache = PlanCache()
        structure = weighted_graph_structure(triangulated_grid(3, 3), seed=6)
        expected = reference_values(structure)
        with WeightedQueryEngine(structure.copy(), DEGREE, NATURAL,
                                 plan_cache=cache) as first:
            with WeightedQueryEngine(structure.copy(), DEGREE, NATURAL,
                                     plan_cache=cache) as second:
                assert second.compiled.circuit is first.compiled.circuit
                assert first.selectors == second.selectors
                probe = structure.domain[0]
                assert first.query(probe) == expected[probe]
                assert second.query(probe) == expected[probe]
        assert cache.stats()["hits"] >= 1

    def test_same_structure_collision_falls_back_to_unique_names(self):
        # Two live engines with the same identity on one structure must
        # not share selector names; the second bypasses the cache.
        cache = PlanCache()
        structure = weighted_graph_structure(triangulated_grid(3, 3), seed=7)
        expected = reference_values(structure)
        with WeightedQueryEngine(structure, DEGREE, NATURAL,
                                 plan_cache=cache) as first:
            with WeightedQueryEngine(structure, DEGREE, NATURAL,
                                     plan_cache=cache) as second:
                assert set(first.selectors).isdisjoint(second.selectors)
                probe = structure.domain[2]
                assert first.query(probe) == expected[probe]
                assert second.query(probe) == expected[probe]
        assert selector_names(structure) == set()

    def test_cached_engine_semiring_separation(self):
        # min-plus and N install different selector zeros, so the cached
        # plans must diverge; both engines stay correct.
        cache = PlanCache()
        structure = weighted_graph_structure(triangulated_grid(3, 3), seed=8)
        nat = reference_values(structure, sr=NATURAL)
        trop = reference_values(structure, sr=MIN_PLUS)
        probe = structure.domain[1]
        with WeightedQueryEngine(structure.copy(), DEGREE, NATURAL,
                                 plan_cache=cache) as engine:
            assert engine.query(probe) == nat[probe]
        with WeightedQueryEngine(structure.copy(), DEGREE, MIN_PLUS,
                                 plan_cache=cache) as engine:
            assert engine.query(probe) == trop[probe]


# -- the result cache -----------------------------------------------------------


class TestResultCache:
    def test_epoch_tagging(self):
        cache = ResultCache(maxsize=4)
        cache.put(("a",), 3, epoch=0)
        assert cache.get(("a",), epoch=0) == 3
        assert cache.get(("a",), epoch=1) is MISS  # stale, evicted
        assert cache.stats()["stale"] == 1
        assert cache.get(("a",), epoch=0) is MISS  # gone for good

    def test_lru_bound(self):
        cache = ResultCache(maxsize=2)
        for index in range(3):
            cache.put((index,), index, epoch=0)
        assert cache.get((0,), epoch=0) is MISS
        assert cache.get((2,), epoch=0) == 2

    def test_none_is_a_cacheable_value(self):
        cache = ResultCache()
        cache.put(("k",), None, epoch=0)
        assert cache.get(("k",), epoch=0) is None


# -- the query service ----------------------------------------------------------


@pytest.fixture
def grid_service():
    structure = weighted_graph_structure(triangulated_grid(4, 4), seed=9)
    expected = reference_values(structure)
    service = QueryService(structure, DEGREE, NATURAL, max_batch_size=16,
                           max_batch_delay=0.002)
    yield structure, expected, service
    service.close()


class TestQueryService:
    def test_concurrent_clients_get_engine_answers(self, grid_service):
        structure, expected, service = grid_service
        errors = []

        def client(tid):
            rng = random.Random(tid)
            try:
                for _ in range(40):
                    probe = rng.choice(structure.domain)
                    value = service.query(probe)
                    if value != expected[probe]:
                        errors.append((probe, value, expected[probe]))
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=client, args=(tid,))
                   for tid in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = service.stats()
        assert stats["queries"] == 12 * 40
        # Coalescing happened: far fewer sweeps than queries.
        assert stats["batches"] < stats["queries"]

    def test_query_batch_and_dict_arguments(self, grid_service):
        structure, expected, service = grid_service
        probes = structure.domain[:6]
        assert service.query_batch([(v,) for v in probes]) \
            == [expected[v] for v in probes]
        probe = structure.domain[3]
        assert service.query({"x": probe}) == expected[probe]

    def test_update_invalidates_results(self, grid_service):
        structure, expected, service = grid_service
        edge = sorted(structure.relations["E"])[0]
        source = edge[0]
        before = service.query(source)
        assert before == expected[source]
        touched = service.update_weight("w", edge, 77)
        assert touched > 0
        assert service.epoch == 1
        after = service.query(source)
        assert after != before
        # The served value agrees with a fresh engine over the updated data.
        fresh = reference_values(structure)
        assert after == fresh[source]

    def test_noop_update_keeps_cache_warm(self, grid_service):
        structure, expected, service = grid_service
        edge = sorted(structure.relations["E"])[0]
        value = structure.weights["w"][edge]
        service.query(edge[0])
        hits_before = service.result_cache.stats()["hits"]
        assert service.update_weight("w", edge, value) == 0
        assert service.epoch == 0
        service.query(edge[0])
        assert service.result_cache.stats()["hits"] == hits_before + 1

    def test_repeated_probe_hits_result_cache(self, grid_service):
        structure, expected, service = grid_service
        probe = structure.domain[5]
        first = service.query(probe)
        hits_before = service.result_cache.stats()["hits"]
        for _ in range(5):
            assert service.query(probe) == first
        assert service.result_cache.stats()["hits"] >= hits_before + 5

    def test_bad_arguments_fail_only_their_caller(self, grid_service):
        structure, expected, service = grid_service
        with pytest.raises(KeyError):
            service.query("no-such-element")
        with pytest.raises(ValueError):
            service.query(structure.domain[0], structure.domain[1])
        probe = structure.domain[0]
        assert service.query(probe) == expected[probe]

    def test_pool_updates_apply_to_every_engine(self):
        structure = weighted_graph_structure(triangulated_grid(4, 4), seed=10)
        edge = sorted(structure.relations["E"])[0]
        with QueryService(structure, DEGREE, NATURAL, pool_size=3,
                          max_batch_size=4, max_batch_delay=0.001,
                          result_cache_size=0) as service:
            assert service.engines[1].compiled.circuit \
                is service.engines[0].compiled.circuit
            service.update_weight("w", edge, 99)
            fresh = reference_values(structure)
            # Hammer enough probes that every pool engine serves some.
            with ThreadPoolExecutor(max_workers=8) as pool:
                values = list(pool.map(
                    service.query, [edge[0]] * 24))
            assert set(values) == {fresh[edge[0]]}

    def test_min_plus_service_uses_tropical_zero(self):
        structure = weighted_graph_structure(triangulated_grid(3, 3), seed=11)
        expected = reference_values(structure, sr=MIN_PLUS)
        with QueryService(structure, DEGREE, MIN_PLUS) as service:
            for probe in structure.domain[:5]:
                assert service.query(probe) == expected[probe]


# -- lifecycle under concurrency (satellite: no selector leaks) -------------------


class TestServiceLifecycle:
    def test_no_selector_leaks_after_concurrent_load(self):
        structure = weighted_graph_structure(triangulated_grid(4, 4), seed=12)
        weight_names = set(structure.weights)
        expected = reference_values(structure)
        service = QueryService(structure, DEGREE, NATURAL, pool_size=2,
                               max_batch_size=8, max_batch_delay=0.001)
        assert selector_names(structure)  # engine 1 lives on the host

        def client(tid):
            rng = random.Random(tid)
            return [service.query(rng.choice(structure.domain))
                    for _ in range(25)]

        with ThreadPoolExecutor(max_workers=16) as pool:
            list(pool.map(client, range(16)))
        service.close()
        assert selector_names(structure) == set()
        assert set(structure.weights) == weight_names
        assert service.closed

    def test_repeated_services_do_not_grow_weight_table(self):
        structure = weighted_graph_structure(triangulated_grid(3, 3), seed=13)
        cache = PlanCache()
        baseline = len(structure.weights)
        values = []
        for _ in range(5):
            with QueryService(structure, DEGREE, NATURAL,
                              plan_cache=cache) as service:
                values.append(service.query(structure.domain[0]))
            assert len(structure.weights) == baseline
        assert len(set(values)) == 1
        # Compilation happened once; every later service hit the cache.
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 4

    def test_close_is_idempotent_and_blocks_use(self):
        structure = weighted_graph_structure(path_graph(6), seed=14)
        service = QueryService(structure, DEGREE, NATURAL)
        probe = structure.domain[0]
        service.query(probe)  # lands in the result cache
        service.close()
        service.close()
        with pytest.raises(RuntimeError):
            service.query(probe)  # a cached result must not leak out
        with pytest.raises(RuntimeError):
            service.query(structure.domain[1])
        with pytest.raises(RuntimeError):
            service.update_weight("w",
                                  sorted(structure.relations["E"])[0], 5)

    def test_close_during_concurrent_group_by_never_hangs(self):
        # Drain-on-close with *grouped* sweeps in flight: a group_by
        # fans one submit per group into the micro-batch queue, so
        # close() must either serve the whole table or fail it with the
        # closed error — never hang, never return a partial table.
        structure = weighted_graph_structure(triangulated_grid(3, 3),
                                             seed=21)
        service = QueryService(structure, DEGREE, NATURAL,
                               max_batch_size=4, max_batch_delay=0.001)
        expected = list(service.group_by())
        started = threading.Barrier(5, timeout=10)
        outcomes = []

        def client():
            started.wait()
            try:
                outcomes.append(("table", list(service.group_by())))
            except RuntimeError:
                outcomes.append(("closed", None))

        threads = [threading.Thread(target=client) for _ in range(4)]
        for thread in threads:
            thread.start()
        started.wait()  # all clients are issuing group submits now
        service.close()
        for thread in threads:
            thread.join(timeout=10)
        assert all(not thread.is_alive() for thread in threads)
        assert len(outcomes) == 4
        for kind, table in outcomes:
            if kind == "table":  # drained before close: the full table
                assert table == expected
        assert selector_names(structure) == set()

    def test_close_during_concurrent_queries_never_hangs(self):
        structure = weighted_graph_structure(triangulated_grid(3, 3), seed=15)
        service = QueryService(structure, DEGREE, NATURAL,
                               max_batch_size=4, max_batch_delay=0.001)
        stop = threading.Event()
        outcomes = []

        def client(tid):
            rng = random.Random(tid)
            while not stop.is_set():
                try:
                    service.query(rng.choice(structure.domain))
                except RuntimeError:
                    outcomes.append("closed")
                    return
            outcomes.append("stopped")

        threads = [threading.Thread(target=client, args=(tid,))
                   for tid in range(6)]
        for thread in threads:
            thread.start()
        service.close()
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        assert all(not thread.is_alive() for thread in threads)
        assert selector_names(structure) == set()
