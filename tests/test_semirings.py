"""Semiring carriers: axioms, capabilities, lasso arithmetic, provenance."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semirings import (BOOLEAN, FLOAT, INTEGER, MAX_PLUS, MIN_MAX,
                             MIN_PLUS, NATURAL, RATIONAL, BoundedMinMax,
                             FreeSemiring, Homomorphism, LassoArithmetic,
                             ModularRing, Poly, ProductSemiring,
                             ScalarMultiplier, SetAlgebra, TableSemiring,
                             check_semiring_axioms,
                             saturating_counter_semiring)

FREE = FreeSemiring()

AXIOM_CASES = [
    (BOOLEAN, [False, True]),
    (NATURAL, [0, 1, 2, 3, 7]),
    (INTEGER, [-3, -1, 0, 1, 2, 5]),
    (RATIONAL, [Fraction(0), Fraction(1), Fraction(-2, 3), Fraction(5, 7)]),
    (MIN_PLUS, [MIN_PLUS.zero, 0, 1, 3, 10]),
    (MAX_PLUS, [MAX_PLUS.zero, 0, 1, 3, 10]),
    (MIN_MAX, [MIN_MAX.zero, 0, 1, 3, 10]),
    (ModularRing(6), list(range(6))),
    (BoundedMinMax(3), list(BoundedMinMax(3).elements())),
    (SetAlgebra("abc"), list(SetAlgebra("abc").elements())),
    (saturating_counter_semiring(4), list(range(5))),
    (FREE, [FREE.zero, FREE.one, FREE.generator("x"),
            FREE.add(FREE.generator("x"), FREE.generator("y")),
            FREE.mul(FREE.generator("x"), FREE.generator("x"))]),
    (ProductSemiring(INTEGER, BOOLEAN), [(0, False), (1, True), (2, False),
                                         (-1, True)]),
]


@pytest.mark.parametrize("sr,samples", AXIOM_CASES,
                         ids=[sr.name for sr, _ in AXIOM_CASES])
def test_axioms(sr, samples):
    check_semiring_axioms(sr, samples)


@given(st.lists(st.integers(-30, 30), min_size=1, max_size=5))
@settings(max_examples=50, deadline=None)
def test_integer_scale_matches_repeated_addition(values):
    for value in values:
        for n in range(0, 7):
            assert INTEGER.scale(n, value) == n * value


@given(st.integers(0, 200), st.integers(0, 5))
@settings(max_examples=60, deadline=None)
def test_modular_scale(n, a):
    sr = ModularRing(7)
    direct = 0
    for _ in range(n):
        direct = sr.add(direct, a % 7)
    assert sr.scale(n, a % 7) == direct


def test_capability_flags():
    assert INTEGER.is_ring and not INTEGER.is_finite
    assert BOOLEAN.is_finite and not BOOLEAN.is_ring
    zmod = ModularRing(4)
    assert zmod.is_ring and zmod.is_finite
    assert not MIN_PLUS.is_ring and not MIN_PLUS.is_finite


def test_coerce_symbolic_constants():
    assert NATURAL.coerce(True) == 1
    assert NATURAL.coerce(3) == 3
    assert BOOLEAN.coerce(2) is True
    assert MIN_PLUS.coerce(0) == MIN_PLUS.zero
    assert MIN_PLUS.coerce(2) == 0  # 2-fold sum of one: min(0, 0)
    assert INTEGER.coerce(-2) == -2
    with pytest.raises(ValueError):
        NATURAL.coerce(-1)


def test_sum_prod_fold():
    assert NATURAL.sum([1, 2, 3]) == 6
    assert NATURAL.prod([2, 3, 4]) == 24
    assert NATURAL.sum([]) == 0
    assert NATURAL.prod([]) == 1
    assert MIN_PLUS.sum([5, 2, 9]) == 2
    assert MIN_PLUS.prod([5, 2, 9]) == 16


class TestLasso:
    def test_scalar_multiplier_boolean(self):
        mult = ScalarMultiplier(BOOLEAN, True)
        assert mult.stem == 0 and mult.cycle == 1
        for n in range(1, 6):
            assert mult.times(n) is True
        assert mult.times(0) is False

    def test_scalar_multiplier_modular(self):
        sr = ModularRing(6)
        mult = ScalarMultiplier(sr, 2)
        # 2, 4, 0, 2, 4, 0 ... cycle of length 3
        assert mult.cycle == 3
        for n in range(1, 30):
            assert mult.times(n) == (2 * n) % 6

    def test_scalar_multiplier_saturating(self):
        sr = saturating_counter_semiring(5)
        mult = ScalarMultiplier(sr, 1)
        assert mult.times(3) == 3
        assert mult.times(100) == 5
        assert mult.stem + mult.cycle <= 6

    def test_lasso_arithmetic_cache(self):
        sr = ModularRing(9)
        lasso = LassoArithmetic(sr)
        for a in range(9):
            for n in (0, 1, 5, 123456789):
                assert lasso.scale(n, a) == (n * a) % 9


class TestProvenance:
    def test_polynomial_arithmetic(self):
        x, y = FREE.generator("x"), FREE.generator("y")
        square = FREE.mul(FREE.add(x, y), FREE.add(x, y))
        assert square.terms == {("x", "x"): 1, ("x", "y"): 2, ("y", "y"): 1}

    def test_monomials_with_multiplicity(self):
        x, y = FREE.generator("x"), FREE.generator("y")
        poly = FREE.add(FREE.mul(x, y), FREE.mul(x, y))
        assert list(poly.monomials()) == [("x", "y"), ("x", "y")]
        assert poly.total_terms() == 2

    def test_support_homomorphism(self):
        x = FREE.generator("x")
        samples = [FREE.zero, FREE.one, x, FREE.add(x, x)]
        hom = Homomorphism(FREE, BOOLEAN, FREE.support, name="support")
        hom.check_on(samples)

    def test_universal_property_evaluation(self):
        x, y = FREE.generator("x"), FREE.generator("y")
        poly = FREE.add(FREE.mul(x, y), FREE.mul(x, x))
        value = FREE.evaluate(poly, {"x": 2, "y": 5}, INTEGER)
        assert value == 2 * 5 + 2 * 2

    def test_poly_hashable_and_equal(self):
        x = FREE.generator("x")
        assert Poly({("x",): 1}) == x
        assert hash(Poly({("x",): 1})) == hash(x)


def test_table_semiring_validates():
    with pytest.raises(AssertionError):
        TableSemiring.from_ops([0, 1], add=lambda a, b: a,  # not commutative
                               mul=lambda a, b: a * b, zero=0, one=1)


def test_product_semiring_componentwise():
    sr = ProductSemiring(INTEGER, BOOLEAN)
    assert sr.add((2, False), (3, True)) == (5, True)
    assert sr.mul((2, True), (3, True)) == (6, True)
    assert not sr.is_ring  # B is not a ring, so neither is the product
    with pytest.raises(NotImplementedError):
        sr.neg((2, False))
    ring_product = ProductSemiring(INTEGER, ModularRing(5))
    assert ring_product.is_ring
    assert ring_product.neg((2, 3)) == (-2, 2)


def test_float_tolerant_equality():
    assert FLOAT.eq(0.1 + 0.2, 0.3)
    assert not FLOAT.eq(1.0, 1.1)
