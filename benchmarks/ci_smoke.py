"""CI benchmark smoke runner: every bench, fast mode, one JSON artifact.

Runs each ``benchmarks/bench_*.py`` through pytest with the benchmark
fixture disabled (functions execute once — a smoke test plus a coarse
wall-clock sample) and ``REPRO_BENCH_FAST=1`` so size-aware benches
shrink their workloads.  Per-bench timings and outcomes accumulate into
a single JSON report (default ``BENCH_ci.json``) which CI uploads as a
workflow artifact, so the perf trajectory of the repo is recorded per
commit.

Usage::

    python benchmarks/ci_smoke.py [--output BENCH_ci.json] [--full]

Exits nonzero if any bench fails, so CI surfaces regressions.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import platform
import re
import subprocess
import sys
import time

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)


def run_bench(path: str, env: dict) -> dict:
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", path, "-q", "--benchmark-disable",
         "--no-header", "-p", "no:cacheprovider"],
        cwd=REPO, env=env, capture_output=True, text=True)
    elapsed = time.perf_counter() - start
    tail = (proc.stdout.strip().splitlines() or [""])[-1]
    counts = {key: int(num) for num, key in
              re.findall(r"(\d+) (passed|failed|error|skipped)", tail)}
    return {
        "bench": os.path.basename(path),
        "seconds": round(elapsed, 3),
        "returncode": proc.returncode,
        "summary": tail,
        **counts,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=os.path.join(REPO,
                                                         "BENCH_ci.json"))
    parser.add_argument("--full", action="store_true",
                        help="run full-size workloads (no fast mode)")
    parser.add_argument("--backend", choices=["auto", "python", "numpy"],
                        default="auto",
                        help="evaluation backend for backend-aware benches "
                             "(exported as REPRO_BACKEND; 'auto' uses numpy "
                             "when importable)")
    args = parser.parse_args(argv)

    have_numpy = importlib.util.find_spec("numpy") is not None
    if args.backend == "numpy" and not have_numpy:
        parser.error("--backend numpy requested but numpy is not importable")
    backend = ("python" if args.backend == "python" or not have_numpy
               else "numpy")

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    if not args.full:
        env["REPRO_BENCH_FAST"] = "1"
    if args.backend != "auto":
        env["REPRO_BACKEND"] = args.backend

    benches = sorted(name for name in os.listdir(HERE)
                     if name.startswith("bench_") and name.endswith(".py"))
    results = []
    for name in benches:
        result = run_bench(os.path.join(HERE, name), env)
        status = "ok" if result["returncode"] == 0 else "FAIL"
        print(f"[{status}] {name}: {result['seconds']}s  "
              f"({result['summary']})", flush=True)
        results.append(result)

    report = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "fast_mode": not args.full,
        "backend": backend,
        "numpy_available": have_numpy,
        "total_seconds": round(sum(r["seconds"] for r in results), 3),
        "benches": results,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output} ({len(results)} benches, "
          f"{report['total_seconds']}s total)")
    return 1 if any(r["returncode"] for r in results) else 0


if __name__ == "__main__":
    sys.exit(main())
