"""CI benchmark smoke runner: every bench, fast mode, one JSON artifact.

Runs each ``benchmarks/bench_*.py`` through pytest with the benchmark
fixture disabled (functions execute once — a smoke test plus a coarse
wall-clock sample) and ``REPRO_BENCH_FAST=1`` so size-aware benches
shrink their workloads.  Per-bench timings and outcomes accumulate into
a single JSON report (default ``BENCH_ci.json``) which CI uploads as a
workflow artifact, so the perf trajectory of the repo is recorded per
commit.

On the numpy leg, benches that honor ``REPRO_BACKEND`` (detected by
scanning their source) are re-run with ``REPRO_BACKEND=python`` and the
per-bench python-vs-numpy wall-clock ratio is recorded
(``python_seconds`` / ``speedup_vs_python``), so the backend trajectory
is comparable across runs from the artifact alone.

Perf-regression gate: ``--baseline BENCH_baseline.json`` diffs the
current run against the committed baseline and exits 2 when any bench
slowed down by more than ``--max-regression`` (default 25%, plus a small
``--grace`` absolute allowance for sub-second noise).  ``--check
REPORT.json`` gates an existing report without re-running the benches
(used to validate the gate itself against synthetic regressions).
Refresh the baseline with ``--write-baseline BENCH_baseline.json``.

Usage::

    python benchmarks/ci_smoke.py [--output BENCH_ci.json] [--full]
        [--backend auto|python|numpy] [--baseline BENCH_baseline.json]
        [--max-regression 0.25] [--grace 0.25]
        [--write-baseline BENCH_baseline.json] [--check BENCH_ci.json]

Exits 1 if any bench fails, 2 if the perf gate trips.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import platform
import re
import subprocess
import sys
import time

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)


def run_bench(path: str, env: dict) -> dict:
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", path, "-q", "--benchmark-disable",
         "--no-header", "-p", "no:cacheprovider"],
        cwd=REPO, env=env, capture_output=True, text=True)
    elapsed = time.perf_counter() - start
    tail = (proc.stdout.strip().splitlines() or [""])[-1]
    counts = {key: int(num) for num, key in
              re.findall(r"(\d+) (passed|failed|error|skipped)", tail)}
    result = {
        "bench": os.path.basename(path),
        "seconds": round(elapsed, 3),
        "returncode": proc.returncode,
        "summary": tail,
        **counts,
    }
    # Benches that exercise the exact-kernel axis print one
    # ``KERNEL-REPORT {json}`` line per axis (chosen kernel, fallback
    # count, speedup); lift them into the artifact so the kernel
    # trajectory is comparable across runs without re-running anything.
    kernels = []
    for line in proc.stdout.splitlines():
        # pytest progress dots may prefix the line; search, don't anchor.
        match = re.search(r"KERNEL-REPORT (\{.*\})\s*$", line)
        if match:
            try:
                kernels.append(json.loads(match.group(1)))
            except json.JSONDecodeError:
                pass
    if kernels:
        result["kernels"] = kernels
    return result


def backend_aware(path: str) -> bool:
    """Does this bench switch behavior on ``REPRO_BACKEND``?"""
    with open(path) as handle:
        return "REPRO_BACKEND" in handle.read()


def compare_to_baseline(report: dict, baseline: dict,
                        max_regression: float, grace: float):
    """Per-bench slowdown check: returns (failures, notes)."""
    failures, notes = [], []
    base_benches = {b["bench"]: b for b in baseline.get("benches", [])}
    for bench in report.get("benches", []):
        base = base_benches.pop(bench["bench"], None)
        if base is None:
            notes.append(f"{bench['bench']}: new bench, no baseline entry")
            continue
        allowed = base["seconds"] * (1.0 + max_regression) + grace
        if bench["seconds"] > allowed:
            slowdown = (bench["seconds"] / base["seconds"] - 1.0) * 100 \
                if base["seconds"] else float("inf")
            failures.append(
                f"{bench['bench']}: {bench['seconds']}s vs baseline "
                f"{base['seconds']}s (+{slowdown:.0f}%, allowed "
                f"{allowed:.3f}s)")
    for name in base_benches:
        notes.append(f"{name}: in baseline but not in this run")
    return failures, notes


def baseline_for_backend(data: dict, backend: str):
    """A baseline file is either one plain report or a mapping
    ``backend -> report`` (the committed form covers both CI legs)."""
    if "benches" in data:
        return data
    return data.get(backend)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=os.path.join(REPO,
                                                         "BENCH_ci.json"))
    parser.add_argument("--full", action="store_true",
                        help="run full-size workloads (no fast mode)")
    parser.add_argument("--backend", choices=["auto", "python", "numpy"],
                        default="auto",
                        help="evaluation backend for backend-aware benches "
                             "(exported as REPRO_BACKEND; 'auto' uses numpy "
                             "when importable)")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON to gate against (exit 2 on "
                             "regression)")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="max tolerated per-bench slowdown fraction "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--grace", type=float, default=0.25,
                        help="absolute seconds of slack per bench on top of "
                             "the relative bound (shields sub-second "
                             "benches from scheduler noise)")
    parser.add_argument("--write-baseline", default=None,
                        help="merge this run into the given baseline file, "
                             "keyed by backend")
    parser.add_argument("--check", default=None,
                        help="gate an existing report JSON against "
                             "--baseline without running any bench")
    args = parser.parse_args(argv)

    have_numpy = importlib.util.find_spec("numpy") is not None
    if args.backend == "numpy" and not have_numpy:
        parser.error("--backend numpy requested but numpy is not importable")
    backend = ("python" if args.backend == "python" or not have_numpy
               else "numpy")

    if args.check is not None:
        with open(args.check) as handle:
            report = json.load(handle)
        return gate(report, args, report.get("backend", backend))

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    if not args.full:
        env["REPRO_BENCH_FAST"] = "1"
    if args.backend != "auto":
        env["REPRO_BACKEND"] = args.backend

    benches = sorted(name for name in os.listdir(HERE)
                     if name.startswith("bench_") and name.endswith(".py"))
    results = []
    for name in benches:
        path = os.path.join(HERE, name)
        result = run_bench(path, env)
        if backend == "numpy" and backend_aware(path):
            # The backend trajectory: the same bench, python backend, so
            # the artifact records the per-bench vectorization speedup.
            python_env = dict(env)
            python_env["REPRO_BACKEND"] = "python"
            python_run = run_bench(path, python_env)
            if python_run["returncode"] == 0:
                result["python_seconds"] = python_run["seconds"]
                result["speedup_vs_python"] = (
                    round(python_run["seconds"] / result["seconds"], 2)
                    if result["seconds"] else None)
            else:
                # A crashing python-backend rerun is a real failure, not
                # a timing sample: record it and fail the run.
                result["python_rerun"] = {
                    "returncode": python_run["returncode"],
                    "summary": python_run["summary"],
                }
                result["returncode"] = result["returncode"] or \
                    python_run["returncode"]
        status = "ok" if result["returncode"] == 0 else "FAIL"
        ratio = (f"  python/numpy={result['speedup_vs_python']}x"
                 if "speedup_vs_python" in result else "")
        print(f"[{status}] {name}: {result['seconds']}s  "
              f"({result['summary']}){ratio}", flush=True)
        results.append(result)

    report = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "fast_mode": not args.full,
        "backend": backend,
        "numpy_available": have_numpy,
        "total_seconds": round(sum(r["seconds"] for r in results), 3),
        "benches": results,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output} ({len(results)} benches, "
          f"{report['total_seconds']}s total)")

    if args.write_baseline:
        merged = {}
        if os.path.exists(args.write_baseline):
            with open(args.write_baseline) as handle:
                merged = json.load(handle)
            if "benches" in merged:  # legacy single-report form
                merged = {merged.get("backend", "numpy"): merged}
        merged[backend] = report
        with open(args.write_baseline, "w") as handle:
            json.dump(merged, handle, indent=2)
            handle.write("\n")
        print(f"merged {backend} baseline into {args.write_baseline}")

    if any(r["returncode"] for r in results):
        return 1
    return gate(report, args, backend)


def gate(report: dict, args, backend: str) -> int:
    """Apply the perf-regression gate; returns the process exit code."""
    if args.baseline is None:
        return 0
    with open(args.baseline) as handle:
        data = json.load(handle)
    baseline = baseline_for_backend(data, backend)
    if baseline is None:
        print(f"perf gate: no '{backend}' section in {args.baseline}; "
              f"skipping (refresh with --write-baseline)")
        return 0
    failures, notes = compare_to_baseline(report, baseline,
                                          args.max_regression, args.grace)
    for note in notes:
        print(f"perf gate note: {note}")
    if failures:
        print(f"perf gate FAILED (>{args.max_regression:.0%} slowdown vs "
              f"{args.baseline}):")
        for failure in failures:
            print(f"  {failure}")
        return 2
    print(f"perf gate ok: no bench slowed by more than "
          f"{args.max_regression:.0%} (+{args.grace}s grace) vs "
          f"{args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
