"""CI benchmark smoke runner: every bench, fast mode, one JSON artifact.

Runs each ``benchmarks/bench_*.py`` through pytest with the benchmark
fixture disabled (functions execute once — a smoke test plus a coarse
wall-clock sample) and ``REPRO_BENCH_FAST=1`` so size-aware benches
shrink their workloads.  Per-bench timings and outcomes accumulate into
a single JSON report (default ``BENCH_ci.json``) which CI uploads as a
workflow artifact, so the perf trajectory of the repo is recorded per
commit.

On the numpy leg, benches that honor ``REPRO_BACKEND`` (detected by
scanning their source) are re-run with ``REPRO_BACKEND=python`` and the
per-bench python-vs-numpy wall-clock ratio is recorded
(``python_seconds`` / ``speedup_vs_python``), so the backend trajectory
is comparable across runs from the artifact alone.

Perf-regression gate: ``--baseline BENCH_baseline.json`` diffs the
current run against the committed baseline and exits 2 when any bench
slowed down by more than ``--max-regression`` (default 25%, plus a small
``--grace`` absolute allowance for sub-second noise).  Before the
benches run, a tiny fixed pure-Python *calibration* workload measures
the machine's speed; per-bench thresholds are scaled by the ratio of
this run's calibration to the baseline's (clamped to [1, 4] — a slower
CI runner relaxes the gate, a faster one never tightens it below the
25% + grace floor).  Against an old baseline with no calibration
sample, the gate falls back to comparing each bench's *share* of the
run's total time, which is machine-speed-free.  ``--check REPORT.json``
gates an existing report without re-running the benches (used to
validate the gate itself against synthetic regressions).  Refresh the
baseline with ``--write-baseline BENCH_baseline.json`` (skipped when
any bench failed — a broken run must not become the new baseline).

The gate also checks every recorded ``speedup_vs_python`` on the numpy
leg: a vectorized backend slower than pure Python at representative
size is a regression (exit 2).  In fast mode the two benches whose
shrunken workloads are known to sit below the vectorization break-even
point are exempt.

Plan store: bench subprocesses run with ``REPRO_PLAN_STORE`` pointing
at a shared store directory (default ``.plan-store/``, cached across
CI runs), an in-process probe records cold-compile vs warm-load
seconds plus the store's hit/miss counters into the report (the
probe's own store lives in a ``tempfile`` context that is always
cleaned up), and any ``PLAN-STORE-REPORT {json}`` lines the benches
print are lifted into the artifact.  The multi-process serving leg is
recorded the same way: ``CLUSTER-REPORT {json}`` lines from the
sharded-gateway axis of ``bench_serve.py`` land under each bench's
``cluster`` key.

Usage::

    python benchmarks/ci_smoke.py [--output BENCH_ci.json] [--full]
        [--backend auto|python|numpy] [--baseline BENCH_baseline.json]
        [--max-regression 0.25] [--grace 0.25]
        [--write-baseline BENCH_baseline.json] [--check BENCH_ci.json]
        [--plan-store DIR | --no-plan-store]

Exits 1 if any bench fails, 2 if the perf gate trips.
"""

from __future__ import annotations

import argparse
import hashlib
import importlib.util
import json
import os
import platform
import re
import subprocess
import sys
import tempfile
import time

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)

# Benches whose REPRO_BENCH_FAST workloads are too small to amortize
# numpy dispatch overhead (measured: the break-even batch/circuit size
# sits above their shrunken fast-mode sizes).  Exempt from the
# speedup_vs_python >= 1 gate in fast mode ONLY — at full size the
# vectorized backend must win on every backend-aware bench.
SPEEDUP_EXEMPT_FAST = {"bench_batched_eval.py", "bench_groupby.py",
                       "bench_serve.py"}

# Clamp bounds for the calibration-derived threshold scale: a slower
# runner may relax the gate up to 4x, a faster runner never tightens
# it (scale floor 1.0 keeps the committed baseline's absolute floor).
CALIBRATION_SCALE_MIN = 1.0
CALIBRATION_SCALE_MAX = 4.0

# Absolute grace (in share-of-total points) for the calibration-free
# relative-share fallback comparison.
SHARE_GRACE = 0.02


def calibrate(repeats: int = 3) -> float:
    """Seconds for a fixed pure-Python workload (best of ``repeats``).

    Measures the machine, not the library: sha256 hashing plus integer
    arithmetic, no imports from the repo, so the sample is identical
    across commits and isolates runner speed from code changes."""
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        digest = hashlib.sha256(b"repro-ci-calibration")
        acc = 0
        for i in range(400_000):
            acc = (acc + i * i) & 0xFFFFFFFF
            if not i & 0x3FFF:
                digest.update(acc.to_bytes(8, "big"))
        digest.hexdigest()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return round(best, 6)


def run_bench(path: str, env: dict) -> dict:
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", path, "-q", "--benchmark-disable",
         "--no-header", "-p", "no:cacheprovider"],
        cwd=REPO, env=env, capture_output=True, text=True)
    elapsed = time.perf_counter() - start
    tail = (proc.stdout.strip().splitlines() or [""])[-1]
    counts = {key: int(num) for num, key in
              re.findall(r"(\d+) (passed|failed|error|skipped)", tail)}
    result = {
        "bench": os.path.basename(path),
        "seconds": round(elapsed, 3),
        "returncode": proc.returncode,
        "summary": tail,
        **counts,
    }
    # Benches that exercise the exact-kernel axis print one
    # ``KERNEL-REPORT {json}`` line per axis (chosen kernel, fallback
    # count, speedup); lift them into the artifact so the kernel
    # trajectory is comparable across runs without re-running anything.
    # Benches publish structured rows as ``<KIND>-REPORT {json}`` lines:
    # exact-kernel choices (KERNEL), plan-store cold/warm timings
    # (PLAN-STORE), the sharded-gateway axis of bench_serve (CLUSTER),
    # and the mixed read/write stream of bench_update_stream
    # (UPDATE-STREAM: per-write cost vs the rehash baseline, warm-hit
    # rate, sharded-consistency check).  Lift them into the artifact so
    # each trajectory is comparable across runs without re-running.
    lifted = {key: [] for key in ("kernels", "plan_store", "cluster",
                                  "update_stream")}
    patterns = {"kernels": r"KERNEL-REPORT (\{.*\})\s*$",
                "plan_store": r"PLAN-STORE-REPORT (\{.*\})\s*$",
                "cluster": r"CLUSTER-REPORT (\{.*\})\s*$",
                "update_stream": r"UPDATE-STREAM-REPORT (\{.*\})\s*$"}
    for line in proc.stdout.splitlines():
        # pytest progress dots may prefix the line; search, don't anchor.
        for key, pattern in patterns.items():
            match = re.search(pattern, line)
            if match:
                try:
                    lifted[key].append(json.loads(match.group(1)))
                except json.JSONDecodeError:
                    pass
    for key, rows in lifted.items():
        if rows:
            result[key] = rows
    return result


def backend_aware(path: str) -> bool:
    """Does this bench switch behavior on ``REPRO_BACKEND``?"""
    with open(path) as handle:
        return "REPRO_BACKEND" in handle.read()


def calibration_scale(report: dict, baseline: dict):
    """The threshold scale from the two calibration samples, or ``None``
    when either run lacks one (old baseline / old report)."""
    current = report.get("calibration_seconds")
    base = baseline.get("calibration_seconds")
    if not current or not base:
        return None
    return min(max(current / base, CALIBRATION_SCALE_MIN),
               CALIBRATION_SCALE_MAX)


def compare_to_baseline(report: dict, baseline: dict,
                        max_regression: float, grace: float):
    """Per-bench slowdown check: returns (failures, notes).

    With calibration samples on both sides, per-bench thresholds are
    ``base * (1 + max_regression) * scale + grace`` where ``scale`` is
    the clamped runner-speed ratio — a slow CI machine relaxes the gate
    instead of flaking it.  Without calibration the check falls back to
    each bench's share of its run's total time (machine-speed-free),
    still floored by the plain 25% + grace absolute bound so a tiny
    bench cannot trip on share noise alone.
    """
    failures, notes = [], []
    scale = calibration_scale(report, baseline)
    if scale is None:
        notes.append("no calibration sample on both sides: falling back "
                     "to relative-share comparison")
    elif scale > 1.0:
        notes.append(f"runner is {scale:.2f}x slower than the baseline's "
                     f"(calibration); thresholds scaled accordingly")
    total = sum(b.get("seconds", 0) for b in report.get("benches", []))
    base_total = sum(b.get("seconds", 0) for b in baseline.get("benches", []))
    base_benches = {b["bench"]: b for b in baseline.get("benches", [])}
    for bench in report.get("benches", []):
        base = base_benches.pop(bench["bench"], None)
        if base is None:
            notes.append(f"{bench['bench']}: new bench, no baseline entry")
            continue
        floor = base["seconds"] * (1.0 + max_regression) + grace
        if bench["seconds"] <= floor:
            continue
        slowdown = (bench["seconds"] / base["seconds"] - 1.0) * 100 \
            if base["seconds"] else float("inf")
        if scale is not None:
            allowed = base["seconds"] * (1.0 + max_regression) * scale + grace
            if bench["seconds"] > allowed:
                failures.append(
                    f"{bench['bench']}: {bench['seconds']}s vs baseline "
                    f"{base['seconds']}s (+{slowdown:.0f}%, allowed "
                    f"{allowed:.3f}s at calibration scale {scale:.2f})")
            continue
        # Relative-share fallback: compare the bench's share of its own
        # run's total — uniform machine slowness cancels out.
        share = bench["seconds"] / total if total else 0.0
        base_share = base["seconds"] / base_total if base_total else 0.0
        allowed_share = base_share * (1.0 + max_regression) + SHARE_GRACE
        if share > allowed_share:
            failures.append(
                f"{bench['bench']}: {bench['seconds']}s vs baseline "
                f"{base['seconds']}s (+{slowdown:.0f}%; share "
                f"{share:.1%} of total vs baseline {base_share:.1%}, "
                f"allowed {allowed_share:.1%})")
    for name in base_benches:
        notes.append(f"{name}: in baseline but not in this run")
    return failures, notes


def check_speedups(report: dict):
    """``speedup_vs_python >= 1`` on every bench that recorded one.

    The numpy leg records the python-backend rerun ratio per
    backend-aware bench; a vectorized backend slower than pure Python
    is a perf regression, not noise.  In fast mode the benches in
    ``SPEEDUP_EXEMPT_FAST`` are skipped (their shrunken workloads sit
    below the vectorization break-even size by design)."""
    failures = []
    fast = bool(report.get("fast_mode"))
    for bench in report.get("benches", []):
        speedup = bench.get("speedup_vs_python")
        if speedup is None:
            continue
        if fast and bench["bench"] in SPEEDUP_EXEMPT_FAST:
            continue
        if speedup < 1.0:
            failures.append(
                f"{bench['bench']}: numpy backend is slower than python "
                f"(speedup_vs_python={speedup}, python="
                f"{bench.get('python_seconds')}s vs {bench['seconds']}s)")
    return failures


def baseline_for_backend(data: dict, backend: str):
    """A baseline file is either one plain report or a mapping
    ``backend -> report`` (the committed form covers both CI legs)."""
    if "benches" in data:
        return data
    return data.get(backend)


def merge_baseline(existing: dict, backend: str, report: dict) -> dict:
    """Merge one leg's report into the per-backend baseline mapping.

    The committed baseline holds one report per CI leg; refreshing one
    leg must not drop the other.  A legacy single-report file (the
    pre-mapping form) is lifted into the mapping under its recorded
    backend first."""
    merged = dict(existing)
    if "benches" in merged:  # legacy single-report form
        merged = {merged.get("backend", "numpy"): merged}
    merged[backend] = report
    return merged


def plan_store_probe(store_path: str):
    """Cold-compile vs warm-load seconds through the plan store.

    Compiles a small fixed workload, then measures the cross-process
    cold-start path — save, then load through a *fresh* store handle —
    inside a ``tempfile`` context, so the probe's own store directory
    is always cleaned up, even when the probe raises midway.  The
    shared ``store_path`` is only touched to record whether CI's
    cross-run cache restored the plan (``warmed_from_cache``) and to
    publish it for the next run.  Returns the probe record for the
    report, or an error record when the library is not importable
    (the probe must never fail the smoke run)."""
    sys.path.insert(0, os.path.join(REPO, "src"))
    sys.path.insert(0, HERE)
    try:
        from common import TRIANGLE, timed, triangle_workload
        from repro.core import _compile_structure_query, plan_cache_key
        from repro.serve import PlanStore

        structure = triangle_workload(4)
        key = plan_cache_key(structure, TRIANGLE, frozenset(), True)
        # Always measure a true compile — the store could satisfy it.
        compiled, cold = timed(_compile_structure_query, structure, TRIANGLE)
        shared = PlanStore(store_path)
        warmed = shared.load(key, structure, TRIANGLE) is not None
        if not warmed:
            shared.save(key, compiled)
        with tempfile.TemporaryDirectory(prefix="repro-plan-probe-") as tmp:
            first = PlanStore(tmp)
            first.save(key, compiled)
            second = PlanStore(tmp)  # fresh handle: no in-memory state
            loaded, warm = timed(second.load, key, structure, TRIANGLE)
            record = {
                "path": os.path.relpath(store_path, REPO),
                "warmed_from_cache": warmed,
                "cold_compile_seconds": round(cold, 6),
                "warm_load_seconds": round(warm, 6),
                "loaded": loaded is not None,
                "hits": second.stats()["hits"],
                "misses": first.stats()["misses"] + second.stats()["misses"],
                "entries": shared.stats()["entries"],
            }
        if loaded is not None and warm:
            record["speedup"] = round(cold / warm, 2)
        return record
    except Exception as error:  # pragma: no cover - defensive
        return {"path": os.path.relpath(store_path, REPO),
                "error": f"{type(error).__name__}: {error}"}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=os.path.join(REPO,
                                                         "BENCH_ci.json"))
    parser.add_argument("--full", action="store_true",
                        help="run full-size workloads (no fast mode)")
    parser.add_argument("--backend", choices=["auto", "python", "numpy"],
                        default="auto",
                        help="evaluation backend for backend-aware benches "
                             "(exported as REPRO_BACKEND; 'auto' uses numpy "
                             "when importable)")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON to gate against (exit 2 on "
                             "regression)")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="max tolerated per-bench slowdown fraction "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--grace", type=float, default=0.25,
                        help="absolute seconds of slack per bench on top of "
                             "the relative bound (shields sub-second "
                             "benches from scheduler noise)")
    parser.add_argument("--write-baseline", default=None,
                        help="merge this run into the given baseline file, "
                             "keyed by backend")
    parser.add_argument("--check", default=None,
                        help="gate an existing report JSON against "
                             "--baseline without running any bench")
    parser.add_argument("--plan-store", default=os.path.join(REPO,
                                                             ".plan-store"),
                        help="shared plan-store directory exported to bench "
                             "subprocesses as REPRO_PLAN_STORE and probed "
                             "for cold/warm timings (default .plan-store/, "
                             "cached across CI runs)")
    parser.add_argument("--no-plan-store", action="store_true",
                        help="run without a plan store (no env export, no "
                             "probe)")
    args = parser.parse_args(argv)

    have_numpy = importlib.util.find_spec("numpy") is not None
    if args.backend == "numpy" and not have_numpy:
        parser.error("--backend numpy requested but numpy is not importable")
    backend = ("python" if args.backend == "python" or not have_numpy
               else "numpy")

    if args.check is not None:
        with open(args.check) as handle:
            report = json.load(handle)
        return gate(report, args, report.get("backend", backend))

    calibration = calibrate()
    print(f"calibration: {calibration}s (fixed pure-python workload, "
          f"best of 3)", flush=True)

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    if not args.full:
        env["REPRO_BENCH_FAST"] = "1"
    if args.backend != "auto":
        env["REPRO_BACKEND"] = args.backend
    if not args.no_plan_store:
        os.makedirs(args.plan_store, exist_ok=True)
        env["REPRO_PLAN_STORE"] = args.plan_store

    benches = sorted(name for name in os.listdir(HERE)
                     if name.startswith("bench_") and name.endswith(".py"))
    results = []
    for name in benches:
        path = os.path.join(HERE, name)
        result = run_bench(path, env)
        if backend == "numpy" and backend_aware(path):
            # The backend trajectory: the same bench, python backend, so
            # the artifact records the per-bench vectorization speedup.
            python_env = dict(env)
            python_env["REPRO_BACKEND"] = "python"
            python_run = run_bench(path, python_env)
            if python_run["returncode"] == 0:
                result["python_seconds"] = python_run["seconds"]
                result["speedup_vs_python"] = (
                    round(python_run["seconds"] / result["seconds"], 2)
                    if result["seconds"] else None)
            else:
                # A crashing python-backend rerun is a real failure, not
                # a timing sample: record it and fail the run.
                result["python_rerun"] = {
                    "returncode": python_run["returncode"],
                    "summary": python_run["summary"],
                }
                result["returncode"] = result["returncode"] or \
                    python_run["returncode"]
        status = "ok" if result["returncode"] == 0 else "FAIL"
        ratio = (f"  python/numpy={result['speedup_vs_python']}x"
                 if "speedup_vs_python" in result else "")
        print(f"[{status}] {name}: {result['seconds']}s  "
              f"({result['summary']}){ratio}", flush=True)
        results.append(result)

    report = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "fast_mode": not args.full,
        "backend": backend,
        "numpy_available": have_numpy,
        "calibration_seconds": calibration,
        "total_seconds": round(sum(r["seconds"] for r in results), 3),
        "benches": results,
    }
    if not args.no_plan_store:
        report["plan_store"] = plan_store_probe(args.plan_store)
        probe = report["plan_store"]
        if "error" in probe:
            print(f"plan-store probe failed: {probe['error']}")
        else:
            print(f"plan store: cold compile "
                  f"{probe['cold_compile_seconds']}s, warm load "
                  f"{probe['warm_load_seconds']}s "
                  f"({probe['entries']} entries, warmed_from_cache="
                  f"{probe['warmed_from_cache']})", flush=True)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output} ({len(results)} benches, "
          f"{report['total_seconds']}s total)")

    failed = any(r["returncode"] for r in results)
    if args.write_baseline:
        if failed:
            # A run with failing benches records bogus timings for
            # them; never let it become the committed reference.
            print(f"NOT writing baseline {args.write_baseline}: "
                  f"benches failed")
        else:
            existing = {}
            if os.path.exists(args.write_baseline):
                with open(args.write_baseline) as handle:
                    existing = json.load(handle)
            merged = merge_baseline(existing, backend, report)
            with open(args.write_baseline, "w") as handle:
                json.dump(merged, handle, indent=2)
                handle.write("\n")
            print(f"merged {backend} baseline into {args.write_baseline}")

    if failed:
        return 1
    return gate(report, args, backend)


def gate(report: dict, args, backend: str) -> int:
    """Apply the perf-regression gate; returns the process exit code."""
    speedup_failures = check_speedups(report)
    if speedup_failures:
        print("perf gate FAILED (vectorized backend slower than python):")
        for failure in speedup_failures:
            print(f"  {failure}")
    if args.baseline is None:
        return 2 if speedup_failures else 0
    with open(args.baseline) as handle:
        data = json.load(handle)
    baseline = baseline_for_backend(data, backend)
    if baseline is None:
        print(f"perf gate: no '{backend}' section in {args.baseline}; "
              f"skipping (refresh with --write-baseline)")
        return 2 if speedup_failures else 0
    failures, notes = compare_to_baseline(report, baseline,
                                          args.max_regression, args.grace)
    for note in notes:
        print(f"perf gate note: {note}")
    if failures:
        print(f"perf gate FAILED (>{args.max_regression:.0%} slowdown vs "
              f"{args.baseline}):")
        for failure in failures:
            print(f"  {failure}")
        return 2
    if speedup_failures:
        return 2
    print(f"perf gate ok: no bench slowed by more than "
          f"{args.max_regression:.0%} (+{args.grace}s grace) vs "
          f"{args.baseline}; all recorded backend speedups >= 1")
    return 0


if __name__ == "__main__":
    sys.exit(main())
