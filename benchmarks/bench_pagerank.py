"""E-EX9 (Example 9): PageRank round — constant-time maintenance."""

import random

import pytest

from repro.engine import WeightedQueryEngine
from repro.logic import Atom, Bracket, Sum, WConst, Weight
from repro.semirings import FLOAT
from repro.structures import graph_structure
from repro.graphs import triangulated_grid

from common import report, timed


def pagerank_engine(side, damping=0.85):
    graph = triangulated_grid(side, side)
    structure = graph_structure(graph)
    rng = random.Random(0)
    for v in structure.domain:
        # w(y)/l(y) stored as one weight, as in the paper (no division).
        structure.set_weight("wl", (v,), rng.random() / graph.degree(v))
    n = len(structure.domain)
    E = lambda x, y: Atom("E", (x, y))
    expr = WConst((1 - damping) / n) + WConst(damping) * Sum(
        "y", Bracket(E("y", "x")) * Weight("wl", ("y",)))
    # _create: this bench measures the Theorem 8 machinery itself, below
    # the repro.api facade seam (which would add bind/caching overhead).
    return structure, WeightedQueryEngine._create(structure, expr, FLOAT)


@pytest.mark.parametrize("side", [5, 7])
def test_pagerank_point_query(benchmark, side):
    structure, engine = pagerank_engine(side)
    rng = random.Random(1)
    benchmark(lambda: engine.query(rng.choice(structure.domain)))


@pytest.mark.parametrize("side", [5, 7])
def test_pagerank_weight_update(benchmark, side):
    structure, engine = pagerank_engine(side)
    rng = random.Random(2)
    nodes = structure.domain
    benchmark(lambda: engine.update_weight("wl", (rng.choice(nodes),),
                                           rng.random()))


def test_pagerank_update_flat_table(capsys):
    rows = []
    for side in (5, 7, 9):
        structure, engine = pagerank_engine(side)
        rng = random.Random(3)
        nodes = structure.domain

        def storm():
            for _ in range(100):
                engine.update_weight("wl", (rng.choice(nodes),),
                                     rng.random())

        _, update_time = timed(storm)
        _, query_time = timed(engine.query, nodes[0])
        rows.append([len(nodes), update_time / 100, query_time])
    with capsys.disabled():
        report("E-EX9: PageRank per-update / per-query seconds",
               ["n", "update", "query"], rows)
