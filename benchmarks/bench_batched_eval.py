"""E-A6: optimizer + batched evaluation vs the seed StaticEvaluator loop.

The seed engine answered an N-valuation workload by running
:class:`StaticEvaluator` N times over the raw Theorem 6 circuit.  The
optimized path runs the ``repro.circuits.optimize`` pipeline once and
then a single :class:`BatchedEvaluator` sweep.  The acceptance target:
>= 2x on the triangle workload at side >= 20 *including* the one-time
optimization cost (excluding it, the sweep alone is typically >= 5x).

``REPRO_BENCH_FAST=1`` shrinks the workload for CI smoke runs (the 2x
assertion only applies at full size, where amortization is realistic).
"""

from __future__ import annotations

import os
import random

import pytest

from repro.circuits import BatchedEvaluator, StaticEvaluator, optimize_circuit
from repro.core import compile_structure_query
from repro.semirings import NATURAL

from common import TRIANGLE, report, timed, triangle_workload

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
SIDE = 8 if FAST else 20
BATCH = 8 if FAST else 64
ROUNDS = 1 if FAST else 3


def best_of(fn, rounds=None):
    """Best-of-N wall clock (the standard noise shield for a one-shot
    assertion): returns (last result, min elapsed)."""
    result, best = None, float("inf")
    for _ in range(ROUNDS if rounds is None else rounds):
        result, elapsed = timed(fn)
        best = min(best, elapsed)
    return result, best


def _workload(side, batch):
    """Raw compiled triangle query + a batch of weight-override valuations."""
    structure = triangle_workload(side)
    compiled = compile_structure_query(structure, TRIANGLE, optimize=False)
    base = compiled.input_valuation(NATURAL)
    rng = random.Random(1)
    edges = sorted(structure.relations["E"])
    zero = NATURAL.zero
    valuations = []
    for _ in range(batch):
        overlay = dict(base)
        for edge in rng.sample(edges, min(5, len(edges))):
            overlay[("w", "w", edge)] = rng.randint(1, 9)
        valuations.append(lambda key, _o=overlay: _o.get(key, zero))
    return compiled, valuations


def test_optimized_batched_beats_seed_loop(capsys):
    compiled, valuations = _workload(SIDE, BATCH)

    def seed_loop():
        return [StaticEvaluator(compiled.circuit, NATURAL, fn).value()
                for fn in valuations]

    seed_values, seed_time = best_of(seed_loop)
    optimized_result, opt_time = best_of(
        lambda: optimize_circuit(compiled.circuit))
    batch_values, batch_time = best_of(
        lambda: BatchedEvaluator(optimized_result.circuit, NATURAL,
                                 valuations).results())
    assert batch_values == seed_values

    total = opt_time + batch_time
    speedup = seed_time / total if total else float("inf")
    sweep_speedup = seed_time / batch_time if batch_time else float("inf")
    with capsys.disabled():
        report(f"E-A6: seed StaticEvaluator loop vs optimize+batched "
               f"(side={SIDE}, batch={BATCH}, seconds)",
               ["path", "time", "speedup"],
               [["seed loop", round(seed_time, 4), 1.0],
                ["optimize (once)", round(opt_time, 4), ""],
                ["batched sweep", round(batch_time, 4),
                 round(sweep_speedup, 2)],
                ["optimize+batched", round(total, 4), round(speedup, 2)]])
        print(f"gates: {optimized_result.gates_before} -> "
              f"{optimized_result.gates_after}")
    if not FAST:
        assert speedup >= 2.0, (
            f"optimized+batched path only {speedup:.2f}x faster than the "
            f"seed StaticEvaluator loop (target: 2x)")


@pytest.mark.parametrize("side", [4, 6] if FAST else [6, 10])
def test_batched_eval(benchmark, side):
    compiled, valuations = _workload(side, BATCH)
    optimized = optimize_circuit(compiled.circuit).circuit
    benchmark(lambda: BatchedEvaluator(optimized, NATURAL,
                                       valuations).results())


@pytest.mark.parametrize("side", [4, 6] if FAST else [6, 10])
def test_seed_eval_loop(benchmark, side):
    compiled, valuations = _workload(side, BATCH)
    benchmark.pedantic(
        lambda: [StaticEvaluator(compiled.circuit, NATURAL, fn).value()
                 for fn in valuations],
        rounds=1, iterations=1)
