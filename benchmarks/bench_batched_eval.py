"""E-A6: batched evaluation backends vs the seed StaticEvaluator loop.

The seed engine answered an N-valuation workload by running
:class:`StaticEvaluator` N times over the raw Theorem 6 circuit.  The
optimized path runs the ``repro.circuits.optimize`` pipeline once and
then a single :class:`BatchedEvaluator` sweep.  The acceptance target:
>= 2x on the triangle workload at side >= 20 *including* the one-time
optimization cost (excluding it, the sweep alone is typically >= 5x).

The *backend axis* compares the two batched substrates on one compiled
query: ``backend="python"`` (the PR 1 :class:`BatchedEvaluator`) vs
``backend="numpy"`` (the layered :class:`VectorizedEvaluator`).  Target:
the numpy backend >= 2x over the python batched sweep on the side-20
triangle workload in the numeric semiring; the pure-Python fallback
results are asserted unchanged.

The *counting-semiring axis* compares the exact kernels on the same
compiled query: ``exact_mode="object"`` (exact Python ints on object
dtype) vs ``exact_mode="int64"`` (the overflow-guarded native fast
path).  Target: >= 3x at side 20, results identical, zero guard trips
on in-range weights — and the chosen kernel + fallback count are
printed as a ``KERNEL-REPORT`` line that ``ci_smoke`` lifts into
``BENCH_ci.json``.

``REPRO_BENCH_FAST=1`` shrinks the workload for CI smoke runs (the 2x
assertions only apply at full size, where amortization is realistic);
``REPRO_BACKEND=python`` disables the numpy axis (the no-numpy CI leg).
"""

from __future__ import annotations

import os
import random

import pytest

from repro.api import Database
from repro.circuits import (HAVE_NUMPY, BatchedEvaluator, StaticEvaluator,
                            optimize_circuit)
# The internal compile entry: these benches measure the compiler and the
# evaluator substrates themselves, below the repro.api facade seam.
from repro.core import _compile_structure_query as compile_structure_query
from repro.semirings import BOOLEAN, NATURAL

from common import TRIANGLE, report, timed, triangle_workload

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
SIDE = 8 if FAST else 20
BATCH = 8 if FAST else 64
ROUNDS = 1 if FAST else 3
NUMPY_OK = HAVE_NUMPY and os.environ.get("REPRO_BACKEND") != "python"


def best_of(fn, rounds=None):
    """Best-of-N wall clock (the standard noise shield for a one-shot
    assertion): returns (last result, min elapsed)."""
    result, best = None, float("inf")
    for _ in range(ROUNDS if rounds is None else rounds):
        result, elapsed = timed(fn)
        best = min(best, elapsed)
    return result, best


def _workload(side, batch):
    """Raw compiled triangle query + a batch of weight-override valuations."""
    structure = triangle_workload(side)
    compiled = compile_structure_query(structure, TRIANGLE, optimize=False)
    base = compiled.input_valuation(NATURAL)
    rng = random.Random(1)
    edges = sorted(structure.relations["E"])
    zero = NATURAL.zero
    valuations = []
    for _ in range(batch):
        overlay = dict(base)
        for edge in rng.sample(edges, min(5, len(edges))):
            overlay[("w", "w", edge)] = rng.randint(1, 9)
        valuations.append(lambda key, _o=overlay: _o.get(key, zero))
    return compiled, valuations


def test_optimized_batched_beats_seed_loop(capsys):
    compiled, valuations = _workload(SIDE, BATCH)

    def seed_loop():
        return [StaticEvaluator(compiled.circuit, NATURAL, fn).value()
                for fn in valuations]

    seed_values, seed_time = best_of(seed_loop)
    optimized_result, opt_time = best_of(
        lambda: optimize_circuit(compiled.circuit))
    batch_values, batch_time = best_of(
        lambda: BatchedEvaluator(optimized_result.circuit, NATURAL,
                                 valuations).results())
    assert batch_values == seed_values

    total = opt_time + batch_time
    speedup = seed_time / total if total else float("inf")
    sweep_speedup = seed_time / batch_time if batch_time else float("inf")
    with capsys.disabled():
        report(f"E-A6: seed StaticEvaluator loop vs optimize+batched "
               f"(side={SIDE}, batch={BATCH}, seconds)",
               ["path", "time", "speedup"],
               [["seed loop", round(seed_time, 4), 1.0],
                ["optimize (once)", round(opt_time, 4), ""],
                ["batched sweep", round(batch_time, 4),
                 round(sweep_speedup, 2)],
                ["optimize+batched", round(total, 4), round(speedup, 2)]])
        print(f"gates: {optimized_result.gates_before} -> "
              f"{optimized_result.gates_after}")
    if not FAST:
        assert speedup >= 2.0, (
            f"optimized+batched path only {speedup:.2f}x faster than the "
            f"seed StaticEvaluator loop (target: 2x)")


def _override_workload(side, batch):
    """Optimized compiled triangle query + sparse weight-override batch
    (the mapping form both backends of ``evaluate_batch`` accept)."""
    structure = triangle_workload(side)
    compiled = compile_structure_query(structure, TRIANGLE)
    rng = random.Random(1)
    edges = sorted(structure.relations["E"])
    overrides = [{("w", "w", edge): rng.randint(1, 9)
                  for edge in rng.sample(edges, min(5, len(edges)))}
                 for _ in range(batch)]
    return compiled, overrides


@pytest.mark.skipif(not NUMPY_OK, reason="numpy unavailable or disabled")
def test_numpy_backend_beats_python_batched(capsys):
    compiled, overrides = _override_workload(SIDE, BATCH)
    python_values, python_time = best_of(
        lambda: compiled.evaluate_batch(NATURAL, overrides,
                                        backend="python"))
    numpy_values, numpy_time = best_of(
        lambda: compiled.evaluate_batch(NATURAL, overrides,
                                        backend="numpy"))
    assert numpy_values == python_values
    speedup = python_time / numpy_time if numpy_time else float("inf")
    with capsys.disabled():
        report(f"E-A6b: batched-sweep backend axis "
               f"(side={SIDE}, batch={BATCH}, semiring=N, seconds)",
               ["backend", "time", "speedup"],
               [["python", round(python_time, 4), 1.0],
                ["numpy", round(numpy_time, 4), round(speedup, 2)]])
        print(f"schedule: {compiled.schedule().stats()}")
    if not FAST:
        assert speedup >= 2.0, (
            f"numpy backend only {speedup:.2f}x over the python "
            f"BatchedEvaluator sweep (target: 2x)")


@pytest.mark.skipif(not NUMPY_OK, reason="numpy unavailable or disabled")
def test_int64_kernel_beats_object_dtype_on_counting_sweep(capsys):
    """E-A6d: the counting-semiring kernel axis.  The same compiled
    triangle query and override batch, evaluated once on the exact
    object-dtype kernel and once on the overflow-guarded int64 fast
    path.  In-range counting weights must not trip a single guard, and
    the guarded path must still be >= 3x faster at full size."""
    import json

    compiled, overrides = _override_workload(SIDE, BATCH)
    object_values, object_time = best_of(
        lambda: compiled.evaluate_batch(NATURAL, overrides,
                                        backend="numpy",
                                        exact_mode="object"))
    int64_values, int64_time = best_of(
        lambda: compiled.evaluate_batch(NATURAL, overrides,
                                        backend="numpy",
                                        exact_mode="int64"))
    assert int64_values == object_values
    kernel = compiled.stats()["exact_kernel"]
    assert kernel["used"] == "N-int64"
    assert kernel["fallbacks"] == 0
    speedup = object_time / int64_time if int64_time else float("inf")
    with capsys.disabled():
        report(f"E-A6d: exact-kernel axis, counting semiring "
               f"(side={SIDE}, batch={BATCH}, semiring=N, seconds)",
               ["exact_mode", "time", "speedup"],
               [["object", round(object_time, 4), 1.0],
                ["int64", round(int64_time, 4), round(speedup, 2)]])
        print("KERNEL-REPORT " + json.dumps({
            "axis": "counting-int64", "side": SIDE, "batch": BATCH,
            "kernel": kernel["used"], "fallbacks": kernel["fallbacks"],
            "speedup_vs_object": round(speedup, 2)}))
    if not FAST:
        assert speedup >= 3.0, (
            f"int64 kernel only {speedup:.2f}x over the object-dtype "
            f"kernel on the counting sweep (target: 3x)")


@pytest.mark.skipif(not NUMPY_OK, reason="numpy unavailable or disabled")
def test_overflowing_counting_sweep_stays_exact(capsys):
    """The guarded path's worst case: weights near the int64 boundary
    force fallbacks, and the results must still equal the object kernel
    exactly (this is the safety half of the E-A6d axis)."""
    import json

    compiled, overrides = _override_workload(8 if FAST else 12, BATCH)
    hot = [{key: value * 2 ** 58 for key, value in override.items()}
           for override in overrides]
    object_values = compiled.evaluate_batch(NATURAL, hot,
                                            backend="numpy",
                                            exact_mode="object")
    int64_values = compiled.evaluate_batch(NATURAL, hot,
                                           backend="numpy",
                                           exact_mode="int64")
    assert int64_values == object_values
    kernel = compiled.stats()["exact_kernel"]
    assert kernel["fallbacks"] >= 1
    assert kernel["used"] == "N-object"
    with capsys.disabled():
        print("KERNEL-REPORT " + json.dumps({
            "axis": "counting-overflow", "kernel": kernel["used"],
            "fallbacks": kernel["fallbacks"]}))


def test_python_fallback_results_unchanged_by_backend_axis():
    """The backend axis must not perturb the pure-Python path: explicit
    ``backend="python"`` agrees with a direct BatchedEvaluator run, and
    ``backend="auto"`` for a kernel-less semiring (boolean) matches its
    explicit-python result.  Runs on the no-numpy leg too — that is the
    configuration these assertions exist to protect."""
    compiled, overrides = _override_workload(8 if FAST else 12, BATCH)
    base = compiled.input_valuation(NATURAL)
    zero = NATURAL.zero
    fns = [lambda key, _o={**base, **ov}: _o.get(key, zero)
           for ov in overrides]
    direct = BatchedEvaluator(compiled.circuit, NATURAL, fns).results()
    assert compiled.evaluate_batch(NATURAL, overrides,
                                   backend="python") == direct
    bool_overrides = [{key: value > 0 for key, value in ov.items()}
                      for ov in overrides]
    assert compiled.evaluate_batch(BOOLEAN, bool_overrides) \
        == compiled.evaluate_batch(BOOLEAN, bool_overrides,
                                   backend="python")


def test_worker_pool_reuse_beats_per_call_pools(capsys):
    """E-A6c: ``evaluate_batch(workers=N)`` historically constructed a
    fresh ``ThreadPoolExecutor`` per call; the facade shards onto one
    Database-held pool for the database's whole lifetime.  Results must
    be identical; the report shows the per-call construction overhead
    amortized away over a repeated small-batch workload."""
    # A small circuit on purpose: the smaller the per-call sweep, the
    # larger the relative cost of constructing a pool per call.
    side = 4 if FAST else 8
    repeats = 8 if FAST else 40
    workers = 4
    structure = triangle_workload(side)
    rng = random.Random(1)
    edges = sorted(structure.relations["E"])
    overrides = [{("w", "w", edge): rng.randint(1, 9)
                  for edge in rng.sample(edges, min(5, len(edges)))}
                 for _ in range(BATCH)]

    with Database(structure) as db:
        prepared = db.prepare(TRIANGLE)
        plan = prepared.plan()

        def per_call_pools():
            # The pre-facade path: executor=None -> one pool per call.
            for _ in range(repeats):
                values = plan.evaluate_batch(NATURAL, overrides,
                                             workers=workers)
            return values

        def shared_pool():
            for _ in range(repeats):
                values = prepared.batch(overrides, NATURAL, workers=workers)
            return values

        fresh_values, fresh_time = best_of(per_call_pools, rounds=ROUNDS)
        shared_values, shared_time = best_of(shared_pool, rounds=ROUNDS)
        assert shared_values == fresh_values
        serial = prepared.batch(overrides, NATURAL)
        assert serial == shared_values

    speedup = fresh_time / shared_time if shared_time else float("inf")
    with capsys.disabled():
        report(f"E-A6c: {repeats}x batched sweeps, workers={workers} "
               f"(side={side}, batch={BATCH}, seconds)",
               ["pool strategy", "time", "speedup"],
               [["fresh pool per call", round(fresh_time, 4), 1.0],
                ["shared Database pool", round(shared_time, 4),
                 round(speedup, 2)]])


BACKENDS = ["python", "numpy"] if NUMPY_OK else ["python"]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("side", [4, 6] if FAST else [6, 10])
def test_backend_sweep(benchmark, side, backend):
    compiled, overrides = _override_workload(side, BATCH)
    compiled.evaluate_batch(NATURAL, overrides, backend=backend)  # warm
    benchmark(lambda: compiled.evaluate_batch(NATURAL, overrides,
                                              backend=backend))


@pytest.mark.parametrize("side", [4, 6] if FAST else [6, 10])
def test_batched_eval(benchmark, side):
    compiled, valuations = _workload(side, BATCH)
    optimized = optimize_circuit(compiled.circuit).circuit
    benchmark(lambda: BatchedEvaluator(optimized, NATURAL,
                                       valuations).results())


@pytest.mark.parametrize("side", [4, 6] if FAST else [6, 10])
def test_seed_eval_loop(benchmark, side):
    compiled, valuations = _workload(side, BATCH)
    benchmark.pedantic(
        lambda: [StaticEvaluator(compiled.circuit, NATURAL, fn).value()
                 for fn in valuations],
        rounds=1, iterations=1)
