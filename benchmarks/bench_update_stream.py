"""E-U1: mixed read/write stream — O(delta) updates vs per-write rehash.

The paper's dynamic claim (Theorem 8, "maintenance under updates") is
constant-time update handling; before this experiment's subject landed,
every ``db.update()`` transaction still paid an O(size) full-content
rehash to reconcile the structure fingerprint, so a transaction-per-write
stream was linear in the *structure* per write, not in the delta.

Two legs over the same interleaved workload (one weight write per
transaction, a rotating window of point reads after each write):

* **rehash baseline** — ``Structure.fingerprint`` is patched to the
  full-content rehash (``full_fingerprint``), reproducing the seed's
  destroy-and-rehash reconcile cost on every transaction exit and every
  out-of-band freshness check;
* **incremental** — the shipped path: the digest is folded per mutation,
  reconcile is an O(1) equality check, and fine-grained retagging keeps
  provably-unaffected cached points warm across the write stream.

Acceptance (full size): the incremental leg is >= 20x the rehash leg,
and every interleaved read of a probe no write could have affected since
its last read is a result-cache hit (asserted, both modes).  A small
sharded leg routes writes through ``serve_sharded`` and asserts the
gateway's answers stay identical to the single-process prepared query.

``REPRO_BENCH_FAST=1`` shrinks the workload (the 20x assertion is
skipped; the warm-hit and sharded-consistency assertions are not).
"""

from __future__ import annotations

import json
import os
import random

from repro import NATURAL, Atom, Bracket, Database, Sum, Weight
from repro.graphs import triangulated_grid
from repro.structures import Structure

from common import report, timed, triangle_workload

E = lambda x, y: Atom("E", (x, y))
w = lambda x, y: Weight("w", (x, y))

#: f(x) = Σ_y [E(x, y)] * w(x, y) — the weighted out-degree point query.
DEGREE = Sum("y", Bracket(E("x", "y")) * w("x", "y"))

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
SIDE = 6 if FAST else 14
WRITES = 30 if FAST else 200
PROBES = 8 if FAST else 32
READS_PER_WRITE = 2 if FAST else 6


def stream_workload(side: int):
    """Integer-weighted triangulated grid plus a deterministic write
    schedule (edge, fresh value) and a probe list for the reads."""
    structure = triangle_workload(side)
    rng = random.Random(7)
    edges = sorted(structure.relations["E"])
    writes = [(edges[rng.randrange(len(edges))], 10 + step)
              for step in range(WRITES)]
    probes = list(structure.domain)[:PROBES]
    return structure, writes, probes


def run_stream(db, query, writes, probes, count_hits: bool):
    """One write per transaction, ``READS_PER_WRITE`` rotating reads
    after each; returns (must_hit_reads, must_hit_misses, hits, reads).

    A probe that no write since its last read could affect (its element
    is not an endpoint of any intervening written edge) is *provably*
    warm — the fine-grained retag carried it across every epoch bump —
    so its read must hit the result cache.
    """
    scope = query._scope(NATURAL) if count_hits else None
    dirty = {probe: False for probe in probes}
    cached = {probe: False for probe in probes}
    must_hit = must_hit_misses = hits = reads = 0
    cursor = 0
    for edge, value in writes:
        with db.update() as tx:
            tx.set_weight("w", edge, value)
        for probe in probes:
            if probe in edge:
                dirty[probe] = True
        for _ in range(READS_PER_WRITE):
            probe = probes[cursor % len(probes)]
            cursor += 1
            before = scope.hits if scope is not None else 0
            query.bind(probe).value(NATURAL)
            reads += 1
            if scope is None:
                continue
            hit = scope.hits > before
            hits += hit
            if cached[probe] and not dirty[probe]:
                must_hit += 1
                must_hit_misses += not hit
            dirty[probe] = False
            cached[probe] = True
    return must_hit, must_hit_misses, hits, reads


def multi_component_workload(parts: int, side: int):
    """Disjoint triangulated grids (string-labeled nodes, wire-safe) —
    the Gaifman components the sharder places across workers."""
    grids = [triangulated_grid(side, side) for _ in range(parts)]
    label = lambda c, node: f"{c}:{node[0]},{node[1]}"
    domain = [label(c, node) for c, grid in enumerate(grids)
              for node in grid.vertices()]
    structure = Structure(domain)
    for c, grid in enumerate(grids):
        for u, v in grid.edges():
            structure.add_tuple("E", (label(c, u), label(c, v)))
            structure.add_tuple("E", (label(c, v), label(c, u)))
    rng = random.Random(3)
    for edge in sorted(structure.relations["E"]):
        structure.set_weight("w", edge, rng.randint(1, 9))
    return structure


def test_update_stream_incremental_vs_rehash(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_VERIFY_FINGERPRINT", raising=False)
    structure, writes, probes = stream_workload(SIDE)

    def run_leg(count_hits: bool):
        with Database(structure.copy()) as db:
            query = db.prepare(DEGREE, params=("x",))
            for probe in probes:  # warm: compile once, fill the cache
                query.bind(probe).value(NATURAL)
            counters, elapsed = timed(
                run_stream, db, query, writes, probes, count_hits)
        return counters, elapsed

    # Leg 1 — the seed's reconcile cost: every fingerprint() read is a
    # full content rehash (transaction exits and freshness checks alike).
    with monkeypatch.context() as patch:
        patch.setattr(Structure, "fingerprint", Structure.full_fingerprint)
        _, rehash_seconds = run_leg(count_hits=False)

    # Leg 2 — the shipped incremental path, with warm-hit accounting.
    (must_hit, must_hit_misses, hits, reads), incremental_seconds = \
        run_leg(count_hits=True)
    speedup = rehash_seconds / incremental_seconds \
        if incremental_seconds else float("inf")
    warm_hit_rate = hits / reads if reads else 0.0

    # Every provably-unaffected interleaved read must be a cache hit —
    # the fine-grained retag carried it across the epoch bumps.
    assert must_hit > 0
    assert must_hit_misses == 0, (
        f"{must_hit_misses}/{must_hit} provably-unaffected reads missed "
        f"the result cache — fine-grained retagging lost warm entries")

    # Leg 3 — sharded serving stays consistent under routed writes.
    sharded = multi_component_workload(parts=4, side=2 if FAST else 3)
    with Database(sharded.copy()) as db:
        prepared = db.prepare(DEGREE, params=("x",))
        service = db.serve_sharded(DEGREE, NATURAL, shards=2,
                                   shard_policy="contiguous")
        routed = sorted(sharded.relations["E"])[::7][:10]
        for step, edge in enumerate(routed):
            with db.update() as tx:
                tx.set_weight("w", edge, 20 + step)
        gateway = [service.query_sync(element)
                   for element in sharded.domain]
        expected = [prepared.bind(x=element).value(NATURAL)
                    for element in sharded.domain]
        assert gateway == expected, \
            "sharded answers diverged from single-process after writes"

    payload = {
        "side": SIDE,
        "writes": WRITES,
        "reads": reads,
        "rehash_seconds": round(rehash_seconds, 4),
        "incremental_seconds": round(incremental_seconds, 4),
        "speedup": round(speedup, 2),
        "warm_hit_rate": round(warm_hit_rate, 4),
        "must_hit_reads": must_hit,
        "must_hit_misses": must_hit_misses,
        "sharded_consistent": True,
        "fast": FAST,
    }
    with capsys.disabled():
        report(f"E-U1: {WRITES}-write stream, {READS_PER_WRITE} reads "
               f"per write (side={SIDE}, seconds)",
               ["path", "time", "writes/s", "speedup"],
               [["per-write rehash", round(rehash_seconds, 4),
                 int(WRITES / rehash_seconds), 1.0],
                ["incremental digest", round(incremental_seconds, 4),
                 int(WRITES / incremental_seconds),
                 round(speedup, 2)]])
        print(f"UPDATE-STREAM-REPORT {json.dumps(payload)}")

    if not FAST:
        assert speedup >= 20.0, (
            f"incremental update stream only {speedup:.1f}x the per-write "
            f"rehash baseline at side={SIDE} (target: 20x)")


def test_update_stream(benchmark):
    structure, writes, probes = stream_workload(SIDE)
    with Database(structure.copy()) as db:
        query = db.prepare(DEGREE, params=("x",))
        for probe in probes:
            query.bind(probe).value(NATURAL)

        def stream():
            run_stream(db, query, writes, probes, count_hits=False)

        benchmark(stream)
