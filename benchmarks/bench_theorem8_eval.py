"""E-A1 (Theorem 8): factorized vs naive weighted evaluation, crossover."""

import os

import pytest

from repro.baselines import StructureModel, eval_expression
# The internal compile entry: this bench measures the evaluators
# themselves, below the repro.api facade seam.
from repro.core import _compile_structure_query as compile_structure_query
from repro.semirings import NATURAL

from common import TRIANGLE, report, timed, triangle_workload

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))


@pytest.mark.parametrize("side", [4] if FAST else [4, 6])
def test_factorized_triangle(benchmark, side):
    structure = triangle_workload(side)
    compiled = compile_structure_query(structure, TRIANGLE)
    benchmark(lambda: compiled.evaluate(NATURAL))


@pytest.mark.parametrize("side", [3] if FAST else [3, 4])
def test_naive_triangle(benchmark, side):
    structure = triangle_workload(side)
    model = StructureModel(structure, 0)
    benchmark.pedantic(
        lambda: eval_expression(TRIANGLE, model, NATURAL),
        rounds=1, iterations=1)


def test_crossover_table(capsys):
    """Who wins: naive O(n^3) vs compile+evaluate O(n * constants)."""
    rows = []
    for side in (3, 4) if FAST else (3, 4, 5, 6):
        structure = triangle_workload(side)
        n = len(structure.domain)
        model = StructureModel(structure, 0)
        naive_value, naive_time = timed(
            eval_expression, TRIANGLE, model, NATURAL)
        compiled, compile_time = timed(
            compile_structure_query, structure, TRIANGLE)
        value, eval_time = timed(compiled.evaluate, NATURAL)
        assert value == naive_value
        rows.append([n, round(naive_time, 4),
                     round(compile_time + eval_time, 4),
                     round(eval_time, 4)])
    with capsys.disabled():
        report("E-A1: naive vs factorized triangle evaluation (seconds)",
               ["n", "naive", "compile+eval", "re-eval"], rows)
