"""Benchmark-local copy of the test workload builders (no tests/ import)."""

import random

from repro.graphs import bounded_depth_forest
from repro.structures import LabeledForest


def random_labeled_forest(n, depth, seed, conv=lambda v: v):
    _, parent = bounded_depth_forest(n, depth, seed=seed)
    rng = random.Random(seed + 1)
    labels = {"R": {v for v in parent if rng.random() < 0.5},
              "B": {v for v in parent if rng.random() < 0.3}}
    weights = {"w": {v: conv(rng.randint(0, 4)) for v in parent
                     if rng.random() < 0.8},
               "u": {v: conv(rng.randint(1, 3)) for v in parent}}
    return LabeledForest(parent, labels=labels, weights=weights)
