"""E-A2 (Theorem 8): dynamic update & point-query latency per semiring."""

import os
import random

import pytest

# Internal entries: this bench measures the Theorem 8 machinery
# itself, below the repro.api facade seam.
from repro.core import _compile_structure_query as compile_structure_query
from repro.engine import WeightedQueryEngine
from repro.logic import Atom, Bracket, Sum, Weight
from repro.semirings import INTEGER, MIN_PLUS

from common import TRIANGLE, report, timed, triangle_workload

SEMIRING_CASES = [("Z(ring:O(1))", INTEGER),
                  ("minplus(general:O(log))", MIN_PLUS)]

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))


@pytest.mark.parametrize("name,sr", SEMIRING_CASES,
                         ids=[n for n, _ in SEMIRING_CASES])
@pytest.mark.parametrize("side", [4] if FAST else [4, 6])
def test_weight_update(benchmark, name, sr, side):
    structure = triangle_workload(side)
    compiled = compile_structure_query(structure, TRIANGLE)
    dynamic = compiled._dynamic(sr)
    edges = sorted(structure.relations["E"])
    rng = random.Random(1)

    def one_update():
        dynamic.update_weight("w", rng.choice(edges), rng.randint(1, 9))
        return dynamic.value()

    benchmark(one_update)


@pytest.mark.parametrize("side", [4] if FAST else [4, 6])
def test_point_query_via_selectors(benchmark, side):
    structure = triangle_workload(side)
    E = lambda x, y: Atom("E", (x, y))
    w = lambda x, y: Weight("w", (x, y))
    per_vertex = Sum(("y", "z"),
                     Bracket(E("x", "y") & E("y", "z") & E("z", "x"))
                     * w("x", "y") * w("y", "z") * w("z", "x"))
    engine = WeightedQueryEngine._create(structure, per_vertex, INTEGER)
    rng = random.Random(2)
    domain = structure.domain

    benchmark(lambda: engine.query(rng.choice(domain)))


def test_update_vs_recompute_table(capsys):
    rows = []
    for side in (4, 6) if FAST else (4, 6, 8):
        structure = triangle_workload(side)
        compiled = compile_structure_query(structure, TRIANGLE)
        dynamic = compiled._dynamic(INTEGER)
        edges = sorted(structure.relations["E"])
        rng = random.Random(3)

        def storm():
            for _ in range(100):
                dynamic.update_weight("w", rng.choice(edges),
                                      rng.randint(1, 9))

        _, update_time = timed(storm)
        _, recompute_time = timed(compiled.evaluate, INTEGER)
        rows.append([len(structure.domain), update_time / 100,
                     recompute_time])
    with capsys.disabled():
        report("E-A2: per-update maintained vs full re-evaluation (s)",
               ["n", "update", "recompute"], rows)
