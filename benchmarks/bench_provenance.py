"""E-C1 (Theorem 22): provenance enumerators with constant access time."""

import pytest

from repro.enumeration import ProvenanceEnumerator
from repro.logic import Sum, Weight
from repro.structures import graph_structure
from repro.graphs import triangulated_grid

from common import report, timed

w = lambda x, y: Weight("w", (x, y))
TRIANGLE_PROV = Sum(("x", "y", "z"), w("x", "y") * w("y", "z") * w("z", "x"))


def provenance_workload(side):
    structure = graph_structure(triangulated_grid(side, side))
    for (a, b) in sorted(structure.relations["E"]):
        structure.set_weight("w", (a, b), ("e", a, b))
    return structure


@pytest.mark.parametrize("side", [4, 6])
def test_provenance_build(benchmark, side):
    structure = provenance_workload(side)
    benchmark.pedantic(lambda: ProvenanceEnumerator(structure,
                                                    TRIANGLE_PROV),
                       rounds=1, iterations=1)


@pytest.mark.parametrize("side", [4, 6])
def test_provenance_delay(benchmark, side):
    prov = ProvenanceEnumerator(provenance_workload(side), TRIANGLE_PROV)
    cursor = prov.cursor()

    def one_step():
        cursor.advance()
        return cursor.current()

    benchmark(one_step)


def test_provenance_shape_table(capsys):
    rows = []
    for side in (3, 4, 6):
        structure = provenance_workload(side)
        prov, build = timed(ProvenanceEnumerator, structure, TRIANGLE_PROV)
        monomials, walk = timed(lambda: sum(1 for _ in prov.monomials()))
        rows.append([len(structure.domain), round(build, 3), monomials,
                     round(walk / max(monomials, 1), 6)])
    with capsys.disabled():
        report("E-C1: provenance build time and per-monomial delay (s)",
               ["n", "build", "monomials", "per_monomial"], rows)
