"""Shared workload builders and reporting helpers for the benchmarks.

Every bench regenerates a 'paper-style' series: since the paper (PODS 2020
theory) has no empirical tables, each experiment validates a theorem-level
complexity claim; EXPERIMENTS.md records the measured shapes.
"""

from __future__ import annotations

import random
import time

from repro.graphs import triangulated_grid
from repro.logic import Atom, Bracket, Sum, Weight
from repro.structures import graph_structure

E = lambda x, y: Atom("E", (x, y))
w = lambda x, y: Weight("w", (x, y))

TRIANGLE = Sum(("x", "y", "z"),
               Bracket(E("x", "y") & E("y", "z") & E("z", "x"))
               * w("x", "y") * w("y", "z") * w("z", "x"))
EDGE_SUM = Sum(("x", "y"), Bracket(E("x", "y")) * w("x", "y"))


def triangle_workload(side: int, seed: int = 0, wmax: int = 9):
    """Triangulated grid with random edge weights (the triangle query's
    natural sparse workload: planar, degree <= 8)."""
    structure = graph_structure(triangulated_grid(side, side))
    rng = random.Random(seed)
    for edge in sorted(structure.relations["E"]):
        structure.set_weight("w", edge, rng.randint(1, wmax))
    return structure


def timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def report(title: str, header: list, rows: list) -> None:
    """Print one experiment table (captured into EXPERIMENTS.md)."""
    print(f"\n== {title} ==")
    print(" | ".join(f"{h:>14}" for h in header))
    for row in rows:
        print(" | ".join(f"{cell:>14}" if not isinstance(cell, float)
                         else f"{cell:>14.6f}" for cell in row))
