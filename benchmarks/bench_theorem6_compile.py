"""E-F1 (Theorem 6): linear-time compilation; bounded circuit parameters.

Also measures the cold-vs-warm axis of the persistent plan store: a warm
load (deserialize from disk) must be at least 5x faster than a fresh
compile at the representative size — the whole point of persisting plans.
"""

import json
import os
import tempfile

import pytest

# The internal compile entry: this bench measures the Theorem 6
# compiler itself, below the repro.api facade seam.
from repro.core import _compile_structure_query as compile_structure_query
from repro.core import plan_cache_key
from repro.semirings import NATURAL
from repro.serve import PlanStore

from common import TRIANGLE, report, timed, triangle_workload

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))


@pytest.mark.parametrize("side", [4, 6] if FAST else [4, 6, 8])
def test_compile_triangle(benchmark, side):
    structure = triangle_workload(side)
    benchmark.pedantic(
        lambda: compile_structure_query(structure, TRIANGLE),
        rounds=1, iterations=1)


def test_plan_store_cold_vs_warm(capsys):
    """Warm plan-store load >= 5x faster than a fresh compile.

    Cold: compile once against an empty store (populates it).  Warm: a
    fresh :class:`PlanStore` handle on the same directory — the
    cross-process cold-start scenario — loads the plan from disk.  Both
    legs must produce the same value, the warm leg must be counted as a
    store hit, and at the representative size the load must beat the
    compile by at least 5x.  The warm load includes the mandatory IR
    verification (:func:`repro.analysis.verify_plan`) of the untrusted
    disk bytes; its cost is measured separately and must stay under 10%
    of the load.  The measured triple is printed as a
    ``PLAN-STORE-REPORT`` line for ci_smoke to lift into BENCH_ci.json.
    """
    side = 6 if FAST else 8
    structure = triangle_workload(side)
    key = plan_cache_key(structure, TRIANGLE, frozenset(), True)
    with tempfile.TemporaryDirectory() as tmp:
        cold_store = PlanStore(tmp)
        compiled, cold = timed(compile_structure_query, structure, TRIANGLE,
                               plan_store=cold_store)
        assert cold_store.stats()["saves"] == 1

        warm_store = PlanStore(tmp)  # fresh handle: no in-memory state
        loaded, warm = timed(warm_store.load, key, structure, TRIANGLE)
        assert loaded is not None, warm_store.stats()
        assert warm_store.stats()["hits"] == 1

        assert loaded.evaluate(NATURAL) == compiled.evaluate(NATURAL)
        assert warm * 5 <= cold, (
            f"warm plan-store load ({warm:.4f}s) is not >= 5x faster than "
            f"a fresh compile ({cold:.4f}s) at side={side}")

        # The verifier guards every load; it must stay a rounding error
        # on the load itself (min over repeats: the cheapest honest
        # measurement of the verifier alone, vs a single-shot load).
        from repro.analysis import verify_plan
        verify = min(timed(verify_plan, loaded)[1] for _ in range(5))
        assert verify < warm * 0.10, (
            f"verify_plan ({verify:.6f}s) costs >= 10% of a warm "
            f"plan-store load ({warm:.4f}s) at side={side}")
    record = {"side": side, "cold_compile_s": round(cold, 6),
              "warm_load_s": round(warm, 6),
              "verify_s": round(verify, 6),
              "speedup": round(cold / warm, 2)}
    with capsys.disabled():
        print(f"\nPLAN-STORE-REPORT {json.dumps(record)}")


def test_linear_size_and_bounded_shape(capsys):
    """Circuit size ~ linear in n; depth / permanent rows bounded."""
    rows = []
    for side in (4, 6) if FAST else (4, 6, 8, 10):
        structure = triangle_workload(side)
        compiled, elapsed = timed(compile_structure_query, structure,
                                  TRIANGLE)
        stats = compiled.stats()
        value = compiled.evaluate(NATURAL)
        rows.append([len(structure.domain), round(elapsed, 3),
                     stats["gates"], stats["depth"], stats["max_perm_rows"],
                     stats["colors"], value])
        assert stats["max_perm_rows"] <= 3
    with capsys.disabled():
        report("E-F1: Theorem 6 compile (triangle query)",
               ["n", "compile_s", "gates", "depth", "perm_rows", "colors",
                "value"], rows)
