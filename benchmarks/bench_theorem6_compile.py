"""E-F1 (Theorem 6): linear-time compilation; bounded circuit parameters."""

import os

import pytest

# The internal compile entry: this bench measures the Theorem 6
# compiler itself, below the repro.api facade seam.
from repro.core import _compile_structure_query as compile_structure_query
from repro.semirings import NATURAL

from common import TRIANGLE, report, timed, triangle_workload

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))


@pytest.mark.parametrize("side", [4, 6] if FAST else [4, 6, 8])
def test_compile_triangle(benchmark, side):
    structure = triangle_workload(side)
    benchmark.pedantic(
        lambda: compile_structure_query(structure, TRIANGLE),
        rounds=1, iterations=1)


def test_linear_size_and_bounded_shape(capsys):
    """Circuit size ~ linear in n; depth / permanent rows bounded."""
    rows = []
    for side in (4, 6) if FAST else (4, 6, 8, 10):
        structure = triangle_workload(side)
        compiled, elapsed = timed(compile_structure_query, structure,
                                  TRIANGLE)
        stats = compiled.stats()
        value = compiled.evaluate(NATURAL)
        rows.append([len(structure.domain), round(elapsed, 3),
                     stats["gates"], stats["depth"], stats["max_perm_rows"],
                     stats["colors"], value])
        assert stats["max_perm_rows"] <= 3
    with capsys.disabled():
        report("E-F1: Theorem 6 compile (triangle query)",
               ["n", "compile_s", "gates", "depth", "perm_rows", "colors",
                "value"], rows)
