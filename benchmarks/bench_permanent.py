"""E-PERM1/2/3 + E-PROP14: permanent evaluation and update complexity.

Claims: k x n permanents evaluate in O(n) (Lemma 11 machinery); updates are
O(log n) for general semirings (tight by Prop 14), O(1) for rings
(Lemma 15) and finite semirings (Lemma 18).
"""

import random

import pytest

from repro.algebra import make_maintainer, permanent
from repro.semirings import INTEGER, MIN_PLUS, ModularRing

from common import report, timed


def build(k, n, seed, conv=lambda v: v):
    rng = random.Random(seed)
    return [[conv(rng.randint(0, 9)) for _ in range(n)] for _ in range(k)]


@pytest.mark.parametrize("n", [200, 400, 800])
def test_eval_linear_in_columns(benchmark, n):
    """E-PERM1: static evaluation time grows ~linearly with n."""
    matrix = build(3, n, seed=1)
    benchmark(lambda: permanent(matrix, INTEGER))


STRATEGY_CASES = [
    ("segment-tree", MIN_PLUS, lambda v: v),     # general: O(log n)
    ("ring", INTEGER, lambda v: v),              # Lemma 15: O(1)
    ("finite", ModularRing(5), lambda v: v % 5), # Lemma 18: O(1)
]


@pytest.mark.parametrize("strategy,sr,conv", STRATEGY_CASES,
                         ids=[s for s, _, _ in STRATEGY_CASES])
@pytest.mark.parametrize("n", [256, 1024, 4096])
def test_update_latency(benchmark, strategy, sr, conv, n):
    """E-PERM2/3 + E-PROP14: update cost flat for ring/finite, ~log for
    general semirings (their ratio is the Prop 14 gap)."""
    matrix = build(3, n, seed=2, conv=conv)
    maintainer = make_maintainer(matrix, sr, strategy=strategy)
    rng = random.Random(3)

    def one_update():
        maintainer.update(rng.randrange(3), rng.randrange(n),
                          conv(rng.randint(0, 9)))
        return maintainer.value()

    benchmark(one_update)


def test_prop14_growth_table(capsys):
    """Tabulate the measured update-time growth (EXPERIMENTS.md, E-PROP14)."""
    rows = []
    for n in (256, 1024, 4096):
        row = [n]
        for strategy, sr, conv in STRATEGY_CASES:
            matrix = build(3, n, seed=4, conv=conv)
            maintainer = make_maintainer(matrix, sr, strategy=strategy)
            rng = random.Random(5)

            def storm():
                for _ in range(200):
                    maintainer.update(rng.randrange(3), rng.randrange(n),
                                      conv(rng.randint(0, 9)))
                    maintainer.value()

            _, elapsed = timed(storm)
            row.append(elapsed / 200)
        rows.append(row)
    with capsys.disabled():
        report("E-PROP14: per-update seconds (general vs ring vs finite)",
               ["n", "segment-tree", "ring", "finite"], rows)
