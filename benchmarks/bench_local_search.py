"""E-EX25 (Example 25): local-search independent set via Theorem 24."""

import pytest

from repro.enumeration import AnswerEnumerator
from repro.logic import Atom
from repro.structures import graph_structure
from repro.graphs import triangulated_grid

from common import report, timed

E = lambda x, y: Atom("E", (x, y))
S = lambda x: Atom("S", (x,))


def improvement_enumerator(side):
    """Answers = vertices addable to the independent set S (lambda = 1)."""
    structure = graph_structure(triangulated_grid(side, side))
    structure.relations.setdefault("S", set())
    structure._arity.setdefault("S", 1)
    # x is free, not in S, and has no neighbor in S:
    # encoded quantifier-free via a dynamic 'blocked' count is avoided —
    # we enumerate violating PAIRS instead: x not in S with S-neighbor y.
    addable = ~S("x") & ~Atom("T", ("x",))
    structure.relations.setdefault("T", set())   # T = "has S-neighbor"
    structure._arity.setdefault("T", 1)
    return structure, AnswerEnumerator(structure, addable,
                                       free_order=("x",),
                                       dynamic_relations=("S", "T"))


def run_local_search(side):
    """Greedy maximal independent set, each round O(1)-ish via enumeration."""
    structure, enumerator = improvement_enumerator(side)
    gaifman = structure.gaifman()
    chosen = []
    rounds = 0
    while enumerator.has_answers():
        (v,) = next(iter(enumerator))
        chosen.append(v)
        enumerator.set_relation("S", (v,), True)
        for u in gaifman.neighbors(v):
            enumerator.set_relation("T", (u,), True)
        rounds += 1
    # Verify independence and maximality.
    chosen_set = set(chosen)
    for v in chosen:
        assert not (set(gaifman.neighbors(v)) & chosen_set)
    for v in structure.domain:
        if v not in chosen_set:
            assert set(gaifman.neighbors(v)) & chosen_set
    return len(chosen)


@pytest.mark.parametrize("side", [4, 6])
def test_local_search_mis(benchmark, side):
    benchmark.pedantic(lambda: run_local_search(side), rounds=1,
                       iterations=1)


def test_local_search_linear_table(capsys):
    rows = []
    for side in (4, 6, 8):
        size, elapsed = timed(run_local_search, side)
        rows.append([side * side, round(elapsed, 3), size])
    with capsys.disabled():
        report("E-EX25: local-search MIS (total seconds, set size)",
               ["n", "total", "|MIS|"], rows)
