"""E-S1: serving throughput — micro-batched serving vs per-query loop.

A 32-thread point-query load is driven through the facade's
``Database.serve`` (micro-batching through ``evaluate_batch``) and
compared against the naive baseline: the same number of point queries
answered by sequential ``bind(...).value(...)`` calls with result
caching disabled (the Theorem 8 selector protocol, one dynamic update
pass per probe).  Acceptance: the service sustains >= 3x the naive
queries/sec on the numpy backend at full size.

Axes reported:

* backend axis — the same service load on ``backend="python"`` vs
  ``backend="numpy"`` (queries/sec each);
* result cache — the headline numbers run with the result cache
  disabled (micro-batching only); a cached row shows the steady-state
  effect of the shared epoch-tagged LRU on a repeating probe mix;
* multi-process axis — the sharded ``ClusterService`` gateway vs the
  single-process service on a many-component workload (queries/sec at
  2 and 4 shards).  Acceptance: the gateway sustains >= 2x the
  single-process service at 4 shards on the numpy leg — each shard's
  circuit covers ~1/4 of the structure, so a probe's batched sweep
  touches 4x fewer gates.  A companion test shows admission control
  shedding load with the typed ``Overloaded`` error once the workers
  saturate, instead of queueing without bound.

``REPRO_BENCH_FAST=1`` shrinks the workload (assertions are skipped);
``REPRO_BACKEND=python`` drops the numpy rows (the no-numpy CI leg).
"""

from __future__ import annotations

import json
import os
import random
import signal
import threading

from repro import FLOAT, Atom, Bracket, Database, Sum, Weight
from repro.circuits import HAVE_NUMPY
from repro.cluster import Overloaded
from repro.graphs import Graph
from repro.structures import graph_structure

from common import report, timed, triangle_workload

E = lambda x, y: Atom("E", (x, y))
w = lambda x, y: Weight("w", (x, y))

#: f(x) = Σ_y [E(x, y)] * w(x, y) — the weighted out-degree point query.
DEGREE = Sum("y", Bracket(E("x", "y")) * w("x", "y"))

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
NUMPY_OK = HAVE_NUMPY and os.environ.get("REPRO_BACKEND") != "python"
SIDE = 8 if FAST else 20
THREADS = 8 if FAST else 32
QUERIES_PER_THREAD = 8 if FAST else 100
ROUNDS = 1 if FAST else 3
MAX_BATCH = 256
MAX_DELAY = 0.001


def serving_workload(side: int):
    """Float-weighted triangulated grid (float64 array kernel) plus a
    per-thread probe schedule over the whole domain."""
    structure = triangle_workload(side)
    for edge in list(structure.weights["w"]):
        structure.set_weight("w", edge, float(structure.weights["w"][edge]))
    schedules = []
    for thread_id in range(THREADS):
        rng = random.Random(1000 + thread_id)
        probes = [rng.choice(structure.domain)
                  for _ in range(QUERIES_PER_THREAD)]
        schedules.append(probes)
    return structure, schedules


def run_naive_loop(query, schedules):
    """The baseline: every probe through the per-query selector protocol.
    (Compilation is paid outside the timed region on both paths — the
    paper's amortized-preprocessing model.)"""
    return {probe: query.bind(probe).value(FLOAT)
            for schedule in schedules for probe in schedule}


def drive_service(service, schedules):
    errors = []

    def client(schedule):
        try:
            for probe in schedule:
                service.query(probe)
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [threading.Thread(target=client, args=(schedule,))
               for schedule in schedules]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


def best_rate(fn, total_queries, rounds=ROUNDS):
    """Best-of-N queries/sec plus the last elapsed time."""
    best = float("inf")
    for _ in range(rounds):
        _, elapsed = timed(fn)
        best = min(best, elapsed)
    return total_queries / best, best


def test_service_throughput_vs_per_query_loop(capsys):
    structure, schedules = serving_workload(SIDE)
    total = sum(len(schedule) for schedule in schedules)

    # result_cache_size=0: the naive loop must pay the selector protocol
    # per probe, not serve memoized repeats.
    with Database(structure.copy(), result_cache_size=0) as db:
        query = db.prepare(DEGREE)
        expected = run_naive_loop(query, schedules)  # warm + reference
        naive_rate, naive_time = best_rate(
            lambda: run_naive_loop(query, schedules), total)

    # Correctness: the service answers what the point queries answer.
    with Database(structure.copy(), result_cache_size=0,
                  max_batch_size=MAX_BATCH,
                  max_batch_delay=MAX_DELAY) as db:
        with db.serve(DEGREE, FLOAT, backend="auto") as service:
            for probe in list(expected)[:10]:
                assert FLOAT.eq(service.query(probe), expected[probe])

    rows = [["bind().value() loop", round(naive_time, 4),
             int(naive_rate), 1.0]]
    rates = {}
    backends = ["python"] + (["numpy"] if NUMPY_OK else [])
    for backend in backends:
        with Database(structure.copy(), result_cache_size=0,
                      max_batch_size=MAX_BATCH,
                      max_batch_delay=MAX_DELAY) as db:
            with db.serve(DEGREE, FLOAT, backend=backend) as service:
                drive_service(service, schedules)  # warm pass
                rate, elapsed = best_rate(
                    lambda: drive_service(service, schedules), total)
        rates[backend] = rate
        rows.append([f"service ({backend})", round(elapsed, 4), int(rate),
                     round(rate / naive_rate, 2)])

    # Steady-state with the shared result cache on (probe mix repeats).
    with Database(structure.copy(), result_cache_size=4096,
                  max_batch_size=MAX_BATCH,
                  max_batch_delay=MAX_DELAY) as db:
        with db.serve(DEGREE, FLOAT,
                      backend="auto" if NUMPY_OK else "python") as service:
            drive_service(service, schedules)  # cold pass fills the cache
            _, warm_time = timed(drive_service, service, schedules)
            cached_stats = service.stats()
    rows.append(["service (cached)", round(warm_time, 4),
                 int(total / warm_time) if warm_time else 0,
                 round(total / warm_time / naive_rate, 2) if warm_time
                 else 0.0])

    with capsys.disabled():
        report(f"E-S1: {THREADS}-thread point-query serving "
               f"(side={SIDE}, {total} queries, seconds)",
               ["path", "time", "qps", "speedup"], rows)
        print(f"cached-pass stats: result_cache={cached_stats['result_cache']}"
              f" mean_batch={cached_stats['mean_batch']}")
    if not FAST and NUMPY_OK:
        speedup = rates["numpy"] / naive_rate
        assert speedup >= 3.0, (
            f"micro-batched service only {speedup:.2f}x the per-query "
            f"bind().value() loop on the numpy backend (target: 3x)")


def test_plan_cache_amortizes_pool_compiles(capsys):
    """Pool construction compiles once: engines 2..N rebind the cached
    plan, so a pool of 4 costs about one compilation, not four."""
    structure, _ = serving_workload(6 if FAST else 10)

    def build_pool():
        with Database(structure.copy()) as db:
            with db.serve(DEGREE, FLOAT, pool_size=4):
                return db.plan_cache.stats()

    stats, elapsed = timed(build_pool)

    def build_loose():
        # Four independent databases: no shared plan cache, 4 compiles.
        for _ in range(4):
            with Database(structure.copy()) as db:
                db.prepare(DEGREE).bind(structure.domain[0]).value(FLOAT)

    _, loose_elapsed = timed(build_loose)
    with capsys.disabled():
        report("E-S2: pool construction, shared plan vs 4 compiles (seconds)",
               ["path", "time"],
               [["pool_size=4 (plan cache)", round(elapsed, 4)],
                ["4 independent databases", round(loose_elapsed, 4)]])
    assert stats["misses"] == 1 and stats["hits"] == 3


def test_service_sweep(benchmark):
    structure, schedules = serving_workload(6 if FAST else 12)
    with Database(structure.copy(), result_cache_size=0,
                  max_batch_size=MAX_BATCH,
                  max_batch_delay=MAX_DELAY) as db:
        with db.serve(DEGREE, FLOAT,
                      backend="auto" if NUMPY_OK else "python") as service:
            benchmark(lambda: drive_service(service, schedules[:4]))


# -- multi-process axis: the sharded gateway -----------------------------------

#: The sharder's placement unit is a Gaifman component, so the workload
#: is a disjoint union of many small chains — the shape where scale-out
#: pays: each shard's circuit covers only its own components, while the
#: single-process service sweeps every probe through the whole circuit.
CLUSTER_COMPONENTS = 48 if FAST else (512 if NUMPY_OK else 64)
CLUSTER_CHAIN = 4 if FAST else 8
CLUSTER_SHARDS = (2,) if FAST else (2, 4)
CLUSTER_BATCH = 1024
CLUSTER_ROUNDS = 1 if FAST else 2


def clustered_workload(components: int, chain: int, seed: int = 0):
    """Disjoint union of ``components`` float-weighted chains."""
    graph = Graph()
    for c in range(components):
        for i in range(chain):
            graph.add_vertex(f"c{c}n{i}")
        for i in range(chain - 1):
            graph.add_edge(f"c{c}n{i}", f"c{c}n{i + 1}")
    structure = graph_structure(graph)
    rng = random.Random(seed)
    for edge in sorted(structure.relations["E"]):
        structure.set_weight("w", edge, float(rng.randint(1, 9)))
    return structure


def cluster_probes(structure, seed: int = 1):
    """One shuffled pass over the domain (every component gets probed)."""
    probes = [(element,) for element in structure.domain]
    random.Random(seed).shuffle(probes)
    return probes


def test_sharded_gateway_throughput(capsys):
    structure = clustered_workload(CLUSTER_COMPONENTS, CLUSTER_CHAIN)
    probes = cluster_probes(structure)
    backend = "numpy" if NUMPY_OK else "python"
    spot = min(len(probes), 256)

    with Database(structure.copy(), result_cache_size=0,
                  max_batch_size=CLUSTER_BATCH, max_batch_delay=0.0) as db:
        with db.serve(DEGREE, FLOAT, backend=backend) as service:
            expected = service.query_batch(probes[:spot])  # warm + reference
            single_rate, single_time = best_rate(
                lambda: service.query_batch(probes), len(probes),
                rounds=CLUSTER_ROUNDS)

    rows = [["service (1 process)", round(single_time, 4),
             int(single_rate), 1.0]]
    rates, last_stats = {}, {}
    for shards in CLUSTER_SHARDS:
        with Database(structure.copy(), result_cache_size=0,
                      max_batch_size=CLUSTER_BATCH,
                      max_batch_delay=0.0) as db:
            with db.serve_sharded(
                    DEGREE, FLOAT, shards=shards, backend=backend,
                    max_pending=4 * len(probes),
                    max_inflight_per_client=4 * len(probes)) as service:
                got = service.query_batch_sync(probes[:spot])
                assert got == expected, "gateway disagrees with the service"
                rate, elapsed = best_rate(
                    lambda: service.query_batch_sync(probes), len(probes),
                    rounds=CLUSTER_ROUNDS)
                last_stats = service.stats()
        rates[shards] = rate
        rows.append([f"gateway ({shards} shards)", round(elapsed, 4),
                     int(rate), round(rate / single_rate, 2)])

    peak = max(CLUSTER_SHARDS)
    with capsys.disabled():
        report(f"E-S4: sharded gateway vs single-process service "
               f"({CLUSTER_COMPONENTS} components, {len(probes)} bulk "
               f"probes, backend={backend}, seconds)",
               ["path", "time", "qps", "speedup"], rows)
        print("CLUSTER-REPORT " + json.dumps({
            "shards": peak, "backend": backend,
            "qps": int(rates[peak]), "single_qps": int(single_rate),
            "speedup": round(rates[peak] / single_rate, 2),
            "merge_seconds": round(last_stats.get("merge_seconds", 0.0), 6),
            "respawns": last_stats.get("respawns", 0),
            "sheds": last_stats.get("sheds", 0),
        }))
    if not FAST and NUMPY_OK:
        speedup = rates[4] / single_rate
        assert speedup >= 2.0, (
            f"sharded gateway only {speedup:.2f}x the single-process "
            f"service at 4 shards on the numpy backend (target: 2x)")


def test_gateway_sheds_load_when_saturated(capsys):
    """Saturation demo: frozen workers, bounded queues, typed sheds.

    With every worker SIGSTOPped the gateway cannot drain; admission
    control must shed with :class:`Overloaded` (scope ``client`` at the
    per-client cap, scope ``gateway`` at the global cap) instead of
    queueing without bound — and serve every admitted request once the
    workers thaw."""
    structure = clustered_workload(16, 4)
    probes = cluster_probes(structure)
    max_pending, per_client = 24, 8
    with Database(structure.copy(), result_cache_size=0) as db:
        with db.serve_sharded(DEGREE, FLOAT, shards=2, backend="python",
                              max_pending=max_pending,
                              max_inflight_per_client=per_client) as service:
            expected = {probe: service.query_sync(*probe)
                        for probe in probes[:max_pending]}
            pids = [entry["pid"] for entry in service.stats()["workers"]]
            for pid in pids:
                os.kill(pid, signal.SIGSTOP)
            try:
                futures, sheds = [], {"client": 0, "gateway": 0}
                # One hog hits its per-client cap first ...
                for probe in probes[:per_client + 2]:
                    try:
                        futures.append((probe,
                                        service.submit(*probe, client="hog")))
                    except Overloaded as error:
                        sheds[error.scope] += 1
                # ... then distinct clients fill the gateway-wide bound.
                for index, probe in enumerate(probes[:max_pending]):
                    try:
                        futures.append((probe, service.submit(
                            *probe, client=f"client-{index}")))
                    except Overloaded as error:
                        sheds[error.scope] += 1
            finally:
                for pid in pids:
                    os.kill(pid, signal.SIGCONT)
            for probe, future in futures:
                assert future.result(60.0) == expected[probe]
            stats = service.stats()
    assert sheds["client"] == 2, sheds
    assert sheds["gateway"] > 0, sheds
    assert stats["sheds"] == sheds["client"] + sheds["gateway"]
    with capsys.disabled():
        report("E-S5: admission control under frozen workers",
               ["admitted", "shed (client)", "shed (gateway)"],
               [[len(futures), sheds["client"], sheds["gateway"]]])
