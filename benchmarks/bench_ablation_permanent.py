"""ABL-1: dynamic permanent maintainer strategies on one workload."""

import random

import pytest

from repro.algebra import STRATEGIES, make_maintainer
from repro.semirings import ModularRing

from common import report, timed

SR = ModularRing(5)


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_strategy_update(benchmark, strategy):
    rng = random.Random(0)
    n = 1024
    matrix = [[rng.randrange(5) for _ in range(n)] for _ in range(3)]
    maintainer = make_maintainer(matrix, SR, strategy=strategy)

    def one_update():
        maintainer.update(rng.randrange(3), rng.randrange(n),
                          rng.randrange(5))
        return maintainer.value()

    benchmark(one_update)


def test_ablation_table(capsys):
    rows = []
    rng = random.Random(1)
    for n in (256, 1024):
        row = [n]
        for strategy in sorted(STRATEGIES):
            matrix = [[rng.randrange(5) for _ in range(n)]
                      for _ in range(3)]
            maintainer = make_maintainer(matrix, SR, strategy=strategy)

            def storm():
                for _ in range(100):
                    maintainer.update(rng.randrange(3), rng.randrange(n),
                                      rng.randrange(5))
                    maintainer.value()

            _, elapsed = timed(storm)
            row.append(elapsed / 100)
        rows.append(row)
    with capsys.disabled():
        report("ABL-1: per-update+value seconds by strategy (Z_5, k=3)",
               ["n"] + sorted(STRATEGIES), rows)
