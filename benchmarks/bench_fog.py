"""E-B1 (Theorem 26): nested weighted query evaluation scaling."""

import random

import pytest

from repro.fog import (SAtom, SIverson, divide_into_max_plus, evaluate_fog,
                       guarded, s_sum)
from repro.semirings import NATURAL
from repro.structures import graph_structure
from repro.graphs import triangulated_grid

from common import report, timed

E = lambda x, y: SAtom("E", (x, y))
wN = lambda y: SAtom("wN", (y,), NATURAL)


def fog_workload(side, seed=0):
    structure = graph_structure(triangulated_grid(side, side))
    rng = random.Random(seed)
    for v in structure.domain:
        structure.add_tuple("V", (v,))
        structure.set_weight("wN", (v,), rng.randint(0, 9))
    return structure


def max_avg_query():
    return s_sum("x", guarded(
        "V", ("x",), divide_into_max_plus(NATURAL),
        s_sum("y", SIverson(E("x", "y"), NATURAL) * wN("y")),
        s_sum("y", SIverson(E("x", "y"), NATURAL))))


@pytest.mark.parametrize("side", [4, 6])
def test_max_avg_neighbor_weight(benchmark, side):
    benchmark.pedantic(
        lambda: evaluate_fog(fog_workload(side), max_avg_query()).value(),
        rounds=1, iterations=1)


def test_fog_scaling_table(capsys):
    rows = []
    for side in (4, 6, 8):
        structure = fog_workload(side)
        result, elapsed = timed(
            lambda: evaluate_fog(structure, max_avg_query()).value())
        rows.append([len(structure.domain), round(elapsed, 3), result])
    with capsys.disabled():
        report("E-B1: FOG max-average-neighbor-weight (s)",
               ["n", "total", "value"], rows)
