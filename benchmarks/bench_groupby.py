"""E-G1: grouped aggregation — one batched sweep vs k point queries.

``PreparedQuery.group_by`` evaluates every group as one column of a
single vectorized sweep over the shared compiled circuit (Theorem 8's
selector protocol amortized across the whole group domain, the selector
edits collapsed into one scatter on the memoized base column).  The
baseline is the same k groups answered by k independent
``bind(...).value(...)`` point queries — one selector dance and one
circuit walk each — with result caching disabled on both paths.
Acceptance: the one-sweep path sustains >= 3x the point-query loop at
k=64 on the numpy backend at full size.

Axes reported:

* backend axis — each CI leg sweeps on its own backend
  (``REPRO_BACKEND=python`` runs the pure-Python sweep, the default
  leg the vectorized one), so the two legs' artifacts compare the
  same grouped workload across backends without either leg paying
  for the other's rows;
* chunking — ``group_batch_size`` splits the sweep into bounded
  column blocks (the working-set knob); the table shows the one-sweep
  and chunked rates side by side.

``REPRO_BENCH_FAST=1`` shrinks the workload (assertions are skipped).
"""

from __future__ import annotations

import os

from repro import NATURAL, Atom, Bracket, Database, Sum, Weight
from repro.circuits import HAVE_NUMPY

from common import report, timed, triangle_workload

E = lambda x, y: Atom("E", (x, y))
w = lambda x, y: Weight("w", (x, y))

#: f(x) = Σ_y [E(x, y)] * w(x, y) — one aggregate per group key x.
DEGREE = Sum("y", Bracket(E("x", "y")) * w("x", "y"))

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
NUMPY_OK = HAVE_NUMPY and os.environ.get("REPRO_BACKEND") != "python"
SIDE = 6 if FAST else 12
GROUPS = 16 if FAST else 64
ROUNDS = 1 if FAST else 10


def grouped_workload(side: int, k: int):
    """Integer-weighted triangulated grid (int64 exact kernel) and the
    first ``k`` domain elements as the explicit group keys."""
    structure = triangle_workload(side)
    keys = list(structure.domain)[:k]
    assert len(keys) == k, "grid too small for the requested group count"
    return structure, keys


def run_point_loop(query, keys):
    """The baseline: one selector-protocol point query per group."""
    return [query.bind(key).value(NATURAL) for key in keys]


def best_rate(fn, count):
    """Best-of-N groups/sec plus the last elapsed seconds."""
    best = float("inf")
    for _ in range(ROUNDS):
        _, elapsed = timed(fn)
        best = min(best, elapsed)
    return count / best, best


def test_group_sweep_vs_point_queries(capsys):
    structure, keys = grouped_workload(SIDE, GROUPS)

    # result_cache_size=0 on both paths: the comparison is sweep vs
    # selector protocol, not cache hits vs cache misses.
    with Database(structure.copy(), result_cache_size=0) as db:
        query = db.prepare(DEGREE, params=("x",))
        expected = run_point_loop(query, keys)  # warm + reference
        point_rate, point_time = best_rate(
            lambda: run_point_loop(query, keys), GROUPS)

    rows = [["bind().value() loop", round(point_time, 4),
             int(point_rate), 1.0]]
    rates = {}
    # One sweep backend per CI leg: the python leg measures the
    # pure-Python sweep, the numpy leg the vectorized one, and the two
    # artifacts together give the cross-backend picture.
    backends = ["numpy"] if NUMPY_OK else ["python"]
    for backend in backends:
        with Database(structure.copy(), result_cache_size=0) as db:
            query = db.prepare(DEGREE, params=("x",), backend=backend)
            table = query.group_by(keys, NATURAL)  # warm + correctness
            assert table.values() == expected
            assert table.stats["sweeps"] == 1
            rate, elapsed = best_rate(
                lambda: query.group_by(keys, NATURAL), GROUPS)
        rates[backend] = rate
        rows.append([f"group_by ({backend})", round(elapsed, 4), int(rate),
                     round(rate / point_rate, 2)])

    # The chunking knob: same result, bounded sweep width.
    if NUMPY_OK:
        with Database(structure.copy(), result_cache_size=0) as db:
            query = db.prepare(DEGREE, params=("x",),
                               group_batch_size=max(GROUPS // 4, 1))
            chunked = query.group_by(keys, NATURAL)
            assert chunked.values() == expected
            assert chunked.stats["sweeps"] == 4 or FAST
            rate, elapsed = best_rate(
                lambda: query.group_by(keys, NATURAL), GROUPS)
        rows.append([f"group_by (chunked x4)", round(elapsed, 4), int(rate),
                     round(rate / point_rate, 2)])

    with capsys.disabled():
        report(f"E-G1: grouped aggregation, k={GROUPS} groups "
               f"(side={SIDE}, seconds)",
               ["path", "time", "groups/s", "speedup"], rows)
    if not FAST and NUMPY_OK:
        speedup = rates["numpy"] / point_rate
        assert speedup >= 3.0, (
            f"one-sweep group_by only {speedup:.2f}x the point-query loop "
            f"at k={GROUPS} on the numpy backend (target: 3x)")


def test_group_sweep(benchmark):
    structure, keys = grouped_workload(SIDE, GROUPS)
    with Database(structure, result_cache_size=0) as db:
        query = db.prepare(DEGREE, params=("x",),
                           backend="auto" if NUMPY_OK else "python")
        query.group_by(keys, NATURAL)  # warm the memoized base column
        benchmark(lambda: query.group_by(keys, NATURAL))
