"""E-D1 (Theorem 24): linear preprocessing, constant delay, O(1) updates."""

import os
import random

import pytest

from repro.enumeration import AnswerEnumerator
from repro.logic import Atom
from repro.structures import graph_structure
from repro.graphs import triangulated_grid

from common import report, timed

E = lambda x, y: Atom("E", (x, y))
TRIANGLE_F = E("x", "y") & E("y", "z") & E("z", "x")

#: CI smoke mode (see benchmarks/ci_smoke.py): shrink every workload.
FAST = bool(os.environ.get("REPRO_BENCH_FAST"))


@pytest.mark.parametrize("side", [4] if FAST else [4, 6])
def test_preprocessing(benchmark, side):
    structure = graph_structure(triangulated_grid(side, side))
    benchmark.pedantic(
        lambda: AnswerEnumerator(structure, TRIANGLE_F,
                                 free_order=("x", "y", "z")),
        rounds=1, iterations=1)


@pytest.mark.parametrize("side", [4] if FAST else [4, 6, 8])
def test_delay_per_answer(benchmark, side):
    structure = graph_structure(triangulated_grid(side, side))
    enumerator = AnswerEnumerator(structure, TRIANGLE_F,
                                  free_order=("x", "y", "z"))
    cursor = enumerator.cursor()

    def one_step():
        cursor.advance()
        return cursor.current()

    benchmark(one_step)


def test_delay_stays_flat_table(capsys):
    """Max/mean delay between outputs must not grow with n (E-D1)."""
    rows = []
    for side in (4,) if FAST else (4, 6, 8):
        structure = graph_structure(triangulated_grid(side, side))
        enumerator, preprocess = timed(
            AnswerEnumerator, structure, TRIANGLE_F,
            free_order=("x", "y", "z"))
        cursor = enumerator.cursor()
        import time
        delays = []
        for _ in range(enumerator.count()):
            start = time.perf_counter()
            cursor.advance()
            delays.append(time.perf_counter() - start)
        rows.append([len(structure.domain), round(preprocess, 3),
                     len(delays), max(delays), sum(delays) / len(delays)])
    with capsys.disabled():
        report("E-D1: enumeration preprocessing and delay (s)",
               ["n", "preprocess", "answers", "max_delay", "mean_delay"],
               rows)


def test_dynamic_update_cost(benchmark):
    structure = graph_structure(triangulated_grid(4 if FAST else 6,
                                                  4 if FAST else 6))
    for v in structure.domain[::2]:
        structure.add_tuple("S", (v,))
    formula = E("x", "y") & Atom("S", ("x",)) & ~Atom("S", ("y",))
    enumerator = AnswerEnumerator(structure, formula,
                                  free_order=("x", "y"),
                                  dynamic_relations=("S",))
    rng = random.Random(1)
    domain = structure.domain

    def one_toggle():
        enumerator.set_relation("S", (rng.choice(domain),),
                                rng.random() < 0.5)

    benchmark(one_toggle)


def test_vs_naive_materialization_table(capsys):
    """Naive materialization scans n^3 tuples; Theorem 24 pays ~linear."""
    import itertools
    from repro.baselines import StructureModel, eval_formula
    rows = []
    for side in (3,) if FAST else (3, 4):
        structure = graph_structure(triangulated_grid(side, side))
        model = StructureModel(structure)

        def materialize():
            return [t for t in itertools.product(structure.domain, repeat=3)
                    if eval_formula(TRIANGLE_F, model,
                                    dict(zip(("x", "y", "z"), t)))]

        naive_answers, naive_time = timed(materialize)
        enumerator, build_time = timed(
            AnswerEnumerator, structure, TRIANGLE_F,
            free_order=("x", "y", "z"))
        fast_answers, enum_time = timed(lambda: list(enumerator))
        assert sorted(fast_answers) == sorted(naive_answers)
        rows.append([len(structure.domain), round(naive_time, 4),
                     round(build_time, 4), round(enum_time, 4)])
    with capsys.disabled():
        report("E-D1b: naive materialization vs Thm 24 (s)",
               ["n", "naive", "preprocess", "enumerate"], rows)
