"""ABL-2: color-decomposition overhead on already-shallow inputs."""

import pytest

from repro.circuits import StaticEvaluator, valuation_from_dict
# _compile_structure_query: this bench ablates the compiler stages
# themselves, below the repro.api facade seam.
from repro.core import compile_forest_query
from repro.core import _compile_structure_query as compile_structure_query
from repro.logic import Atom, Bracket, Sum, Weight, neq, normalize
from repro.logic.fo import FuncAtom
from repro.semirings import NATURAL
from repro.structures import Structure

from common import report, timed
from tests_shim import random_labeled_forest


def forest_as_structure(forest):
    """View a labeled forest as a relational structure with a parent edge."""
    structure = Structure(forest.nodes())
    for node, par in forest.parent.items():
        if par is not None:
            structure.add_tuple("P", (node, par))
    for name, mapping in forest.weights.items():
        for node, value in mapping.items():
            structure.set_weight(name, (node,), value)
    return structure


# neq excludes the saturating parent(root) = root pairs so both encodings
# agree on proper parent edges.
FOREST_EXPR = Sum(("x", "y"),
                  Bracket(FuncAtom(("parent", 1), "x", "y") & neq("x", "y"))
                  * Weight("w", ("x",)) * Weight("u", ("y",)))
STRUCT_EXPR = Sum(("x", "y"), Bracket(Atom("P", ("x", "y")))
                  * Weight("w", ("x",)) * Weight("u", ("y",)))


@pytest.mark.parametrize("mode", ["direct-forest", "full-pipeline"])
def test_ablation(benchmark, mode):
    forest = random_labeled_forest(120, 3, seed=1)
    if mode == "direct-forest":
        benchmark.pedantic(
            lambda: compile_forest_query(forest, normalize(FOREST_EXPR)),
            rounds=1, iterations=1)
    else:
        structure = forest_as_structure(forest)
        benchmark.pedantic(
            lambda: compile_structure_query(structure, STRUCT_EXPR),
            rounds=1, iterations=1)


def test_ablation_table(capsys):
    rows = []
    for n in (60, 120, 240):
        forest = random_labeled_forest(n, 3, seed=2)
        circuit, direct = timed(compile_forest_query, forest,
                                normalize(FOREST_EXPR))
        values = {("w", name, (node,)): val
                  for name, mp in forest.weights.items()
                  for node, val in mp.items()}
        direct_value = StaticEvaluator(
            circuit, NATURAL, valuation_from_dict(values, 0)).value()
        structure = forest_as_structure(forest)
        compiled, full = timed(compile_structure_query, structure,
                               STRUCT_EXPR)
        assert compiled.evaluate(NATURAL) == direct_value
        rows.append([n, round(direct, 3), round(full, 3)])
    with capsys.disabled():
        report("ABL-2: direct forest compile vs full pipeline (s)",
               ["n", "direct", "pipeline"], rows)
