"""Build a plan-store corpus for the CI ``analysis`` job.

Compiles the plan-store test queries (triangle count and edge sum over
a triangulated grid, plus a star query whose compiled circuit retains
real multi-row ``PermGate``s) once per shipped semiring — every entry
of ``SEMIRING_CASES`` from ``tests/test_plan_store.py``, i.e. every
semiring with a serializable carrier — and persists each compiled plan
into a :class:`repro.serve.PlanStore` directory.  ``python -m
repro.analysis verify-store`` then audits the whole corpus: the IR
verifier must accept every plan the real pipeline produces.

Usage: ``python .github/scripts/build_plan_corpus.py [STORE_DIR]``
(default ``.plan-corpus``).  Exits non-zero if any compilation fails
to persist.
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, REPO_ROOT)

from repro.core import _compile_structure_query  # noqa: E402
from repro.logic import Atom, Bracket, Sum, Weight  # noqa: E402
from repro.serve import PlanStore  # noqa: E402

from tests.test_plan_store import (EDGE_SUM, SEMIRING_CASES,  # noqa: E402
                                   TRIANGLE, weighted_structure)


def _star():
    def edge(x, y):
        return Atom("E", (x, y))

    def weight(x, y):
        return Weight("w", (x, y))

    return Sum(("x", "y", "z"),
               Bracket(edge("x", "y") & edge("x", "z"))
               * weight("x", "y") * weight("x", "z"))


QUERIES = [("triangle", TRIANGLE), ("edge-sum", EDGE_SUM),
           ("star", _star())]


def main(argv):
    directory = argv[1] if len(argv) > 1 else ".plan-corpus"
    store = PlanStore(directory, max_entries=4096)
    failures = 0
    for name, _semiring, conv in SEMIRING_CASES:
        structure = weighted_structure(conv)
        for query_name, expr in QUERIES:
            # Some semirings map the test weights to identical carrier
            # values (e.g. Z_7 and N agree on 0..4), so their plans
            # share a store entry: a hit is as good as a save.
            before = store.saves + store.hits
            _compile_structure_query(structure, expr, plan_store=store)
            if store.saves + store.hits == before:
                failures += 1
                print(f"FAIL {name}/{query_name}: plan was not persisted")
            else:
                print(f"ok   {name}/{query_name}")
    stats = store.stats()
    print(f"plan corpus: {stats['entries']} entries "
          f"({stats['bytes']} bytes) in {directory}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
