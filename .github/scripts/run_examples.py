#!/usr/bin/env python
"""Examples smoke runner: every examples/*.py must run end to end, and
none may lean on a deprecated entry point.

``DeprecationWarning``s attributed to the example itself (``__main__``)
or to any repo module (``repro`` and submodules — ``filterwarnings``
module patterns are prefix regexes, unlike the exact-match ``-W``
command-line form) are promoted to errors; third-party warnings stay
warnings.  Exits nonzero if any example fails.

Usage:  PYTHONPATH=src python .github/scripts/run_examples.py
"""

from __future__ import annotations

import glob
import os
import runpy
import sys
import traceback
import warnings

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def main() -> int:
    status = 0
    examples = sorted(glob.glob(os.path.join(REPO, "examples", "*.py")))
    if not examples:
        print("no examples found", file=sys.stderr)
        return 1
    for path in examples:
        name = os.path.relpath(path, REPO)
        print(f"== {name}", flush=True)
        with warnings.catch_warnings():
            warnings.filterwarnings("error", category=DeprecationWarning,
                                    module=r"__main__")
            warnings.filterwarnings("error", category=DeprecationWarning,
                                    module=r"repro")
            try:
                runpy.run_path(path, run_name="__main__")
            except Exception:
                traceback.print_exc()
                print(f"FAILED: {name}", flush=True)
                status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
